// Closed-loop load generator for the KV serving front end: N client threads,
// each with its own RpcClient and a configurable pipelining depth, drive a
// read/write mix against a server and report per-op latency percentiles
// (p50/p95/p99 via common/histogram.h) plus aggregate throughput.
//
// By default it hosts the whole stack in-process — a small mint::MintCluster
// behind a KvServer on an ephemeral localhost port — so one command
// exercises sockets, framing, admission control, the worker pool, and the
// engines end to end:
//
//   build/bench/server_loadgen --threads 8 --ops-per-thread 2000
//
// Point it at an external server instead (e.g. `qindb_shell --serve 7000`):
//
//   build/bench/server_loadgen --connect 127.0.0.1:7000 --threads 8
//
// Closed loop means each thread keeps at most `--pipeline` requests in
// flight and issues the next only when one completes — offered load adapts
// to service rate, which is the regime the tail-latency literature measures.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/report.h"
#include "common/histogram.h"
#include "common/random.h"
#include "rpc/client.h"
#include "server/kv_server.h"

using namespace directload;

namespace {

struct LoadgenConfig {
  int threads = 8;
  int ops_per_thread = 2000;
  int write_pct = 20;       // Remainder are GetLatest reads.
  int pipeline = 1;         // Requests in flight per thread.
  int value_bytes = 128;
  int key_space = 4096;
  /// Write ops per request frame. 1 sends plain PUT frames; > 1 packs that
  /// many PUTs into one kWriteBatch frame — the client half of group
  /// commit, amortizing the round trip over the batch.
  int batch = 1;
  /// KvServerOptions::max_write_batch for the in-process server; <= 0
  /// keeps the server default.
  int server_max_write_batch = 0;
  /// Engine shards per node for the in-process cluster; 0 keeps the engine
  /// default (hardware_concurrency). Ignored with --connect.
  int shards = 0;
  std::string json_path;     // Empty = no JSON summary.
  std::string connect_host;  // Empty = host an in-process server.
  uint16_t connect_port = 0;
};

struct ThreadResult {
  Histogram read_latency_us;
  Histogram write_latency_us;
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t not_found = 0;  // Reads of keys no write has landed on yet.
  uint64_t errors = 0;
  /// Ops beyond one per completed frame (batched writes land `batch` ops
  /// per request, but one latency sample).
  uint64_t extra_ops = 0;
};

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

void RunClientThread(const LoadgenConfig& config, const std::string& host,
                     uint16_t port, int thread_id,
                     std::atomic<uint64_t>* next_version,
                     ThreadResult* result) {
  rpc::RpcClient client(host, port);
  if (!client.Connect().ok()) {
    result->errors += config.ops_per_thread;
    return;
  }
  Random rng(0x10adull * (thread_id + 1));
  const std::string value(config.value_bytes, 'x');

  struct InFlight {
    Clock::time_point sent;
    bool is_write = false;
  };
  std::map<uint64_t, InFlight> in_flight;
  int issued = 0, completed = 0;

  auto issue_one = [&]() -> bool {
    rpc::Frame request;
    request.request_id = client.NextRequestId();
    const bool is_write =
        static_cast<int>(rng.Uniform(100)) < config.write_pct;
    const std::string key =
        "bench:k" + std::to_string(rng.Uniform(config.key_space));
    if (is_write && config.batch > 1) {
      // One kWriteBatch frame carrying `batch` PUTs: `batch` ops for one
      // round trip and (server-side) one engine commit per node.
      std::vector<rpc::BatchOp> ops(config.batch);
      for (rpc::BatchOp& op : ops) {
        op.version = next_version->fetch_add(1);
        op.key = "bench:k" + std::to_string(rng.Uniform(config.key_space));
        op.value = value;
      }
      request.op = rpc::Opcode::kWriteBatch;
      rpc::EncodeBatchOps(ops, &request.value);
    } else if (is_write) {
      request.op = rpc::Opcode::kPut;
      request.version = next_version->fetch_add(1);
      request.key = key;
      request.value = value;
    } else {
      request.op = rpc::Opcode::kGet;
      request.latest = true;
      request.key = key;
    }
    InFlight tracking{Clock::now(), is_write};
    if (!client.Send(request).ok()) return false;
    in_flight.emplace(request.request_id, tracking);
    ++issued;
    return true;
  };

  auto complete_one = [&]() -> bool {
    Result<rpc::Frame> response = client.Receive();
    if (!response.ok()) return false;
    auto it = in_flight.find(response->request_id);
    if (it == in_flight.end()) return true;  // Stale id; ignore.
    const double micros = MicrosSince(it->second.sent);
    if (it->second.is_write) {
      result->write_latency_us.Add(micros);
      if (response->op == rpc::Opcode::kWriteBatch) {
        result->extra_ops += config.batch - 1;
      }
    } else {
      result->read_latency_us.Add(micros);
    }
    switch (response->status) {
      case StatusCode::kOk:
        ++result->ok;
        break;
      case StatusCode::kBusy:
        ++result->busy;
        break;
      case StatusCode::kNotFound:
        ++result->not_found;
        break;
      default:
        ++result->errors;
        break;
    }
    in_flight.erase(it);
    ++completed;
    return true;
  };

  while (completed < config.ops_per_thread) {
    while (issued < config.ops_per_thread &&
           static_cast<int>(in_flight.size()) < config.pipeline) {
      if (!issue_one()) {
        result->errors += config.ops_per_thread - completed;
        return;
      }
    }
    if (!complete_one()) {
      result->errors += config.ops_per_thread - completed;
      return;
    }
  }
}

void PrintPercentiles(const char* label, const Histogram& h) {
  std::printf("%-7s count=%-8llu p50=%8.1fus p95=%8.1fus p99=%8.1fus "
              "mean=%8.1fus max=%8.1fus\n",
              label, (unsigned long long)h.count(), h.Percentile(50),
              h.Percentile(95), h.Percentile(99), h.Mean(), h.max());
}

bool ParseArgs(int argc, char** argv, LoadgenConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--threads") {
      if (!next_int(&config->threads)) return false;
    } else if (arg == "--ops-per-thread") {
      if (!next_int(&config->ops_per_thread)) return false;
    } else if (arg == "--write-pct") {
      if (!next_int(&config->write_pct)) return false;
    } else if (arg == "--pipeline") {
      if (!next_int(&config->pipeline)) return false;
    } else if (arg == "--value-bytes") {
      if (!next_int(&config->value_bytes)) return false;
    } else if (arg == "--keys") {
      if (!next_int(&config->key_space)) return false;
    } else if (arg == "--batch") {
      if (!next_int(&config->batch)) return false;
    } else if (arg == "--server-max-write-batch") {
      if (!next_int(&config->server_max_write_batch)) return false;
    } else if (arg == "--shards") {
      if (!next_int(&config->shards)) return false;
    } else if (arg == "--connect") {
      if (i + 1 >= argc) return false;
      const std::string target = argv[++i];
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos) return false;
      config->connect_host = target.substr(0, colon);
      config->connect_port =
          static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return config->threads > 0 && config->ops_per_thread > 0 &&
         config->pipeline > 0 && config->write_pct >= 0 &&
         config->write_pct <= 100 && config->batch > 0 &&
         config->shards >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config;
  config.json_path = bench::ExtractJsonFlag(&argc, argv);
  if (!ParseArgs(argc, argv, &config)) {
    std::fprintf(stderr,
                 "usage: server_loadgen [--threads N] [--ops-per-thread M]\n"
                 "         [--write-pct P] [--pipeline D] [--value-bytes B]\n"
                 "         [--keys K] [--batch W] [--server-max-write-batch S]\n"
                 "         [--shards N] [--json=PATH] [--connect host:port]\n");
    return 1;
  }

  // The served stack, when not connecting to an external server.
  std::unique_ptr<mint::MintCluster> cluster;
  std::unique_ptr<server::KvServer> kv_server;
  std::string host = config.connect_host;
  uint16_t port = config.connect_port;
  if (host.empty()) {
    mint::MintOptions mint_options;
    mint_options.num_groups = 2;
    mint_options.nodes_per_group = 1;
    mint_options.replicas = 1;
    mint_options.parallel_reads = false;
    mint_options.engine.aof.segment_bytes = 8 << 20;
    mint_options.engine.num_shards = static_cast<uint32_t>(config.shards);
    cluster = std::make_unique<mint::MintCluster>(mint_options);
    Status s = cluster->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "cluster start failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    server::KvServerOptions server_options;
    if (config.server_max_write_batch > 0) {
      server_options.max_write_batch =
          static_cast<size_t>(config.server_max_write_batch);
    }
    kv_server = std::make_unique<server::KvServer>(cluster.get(),
                                                   server_options);
    s = kv_server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    host = "127.0.0.1";
    port = kv_server->port();
    std::printf("hosting in-process server on 127.0.0.1:%u\n", port);
  }

  std::printf("loadgen: %d threads x %d requests, %d%% writes, pipeline "
              "depth %d, %dB values, %d keys, %d write ops/frame\n",
              config.threads, config.ops_per_thread, config.write_pct,
              config.pipeline, config.value_bytes, config.key_space,
              config.batch);

  std::atomic<uint64_t> next_version{1};
  std::vector<ThreadResult> results(config.threads);
  std::vector<std::thread> threads;
  threads.reserve(config.threads);
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < config.threads; ++t) {
    threads.emplace_back(RunClientThread, std::cref(config), std::cref(host),
                         port, t, &next_version, &results[t]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_seconds = MicrosSince(start) * 1e-6;

  Histogram reads, writes;
  uint64_t ok = 0, busy = 0, not_found = 0, errors = 0, extra_ops = 0;
  for (const ThreadResult& r : results) {
    reads.Merge(r.read_latency_us);
    writes.Merge(r.write_latency_us);
    ok += r.ok;
    busy += r.busy;
    not_found += r.not_found;
    errors += r.errors;
    extra_ops += r.extra_ops;
  }
  const uint64_t completed = reads.count() + writes.count() + extra_ops;
  const double ops_per_sec =
      elapsed_seconds > 0 ? completed / elapsed_seconds : 0.0;

  PrintPercentiles("reads", reads);
  PrintPercentiles("writes", writes);
  std::printf("status: ok=%llu not_found=%llu busy=%llu errors=%llu\n",
              (unsigned long long)ok, (unsigned long long)not_found,
              (unsigned long long)busy, (unsigned long long)errors);
  std::printf("throughput: %.0f ops/s (%llu ops in %.2fs)\n", ops_per_sec,
              (unsigned long long)completed, elapsed_seconds);

  bench::JsonReport report;
  report.AddString("bench", "server_loadgen");
  report.Add("threads", config.threads);
  report.Add("ops_per_thread", config.ops_per_thread);
  report.Add("write_pct", config.write_pct);
  report.Add("pipeline", config.pipeline);
  report.Add("batch", config.batch);
  report.Add("value_bytes", config.value_bytes);
  report.Add("shards", config.shards);
  report.Add("ops_per_sec", ops_per_sec);
  report.Add("completed_ops", completed);
  report.Add("read_p50_us", reads.Percentile(50));
  report.Add("read_p95_us", reads.Percentile(95));
  report.Add("read_p99_us", reads.Percentile(99));
  report.Add("write_p50_us", writes.Percentile(50));
  report.Add("write_p95_us", writes.Percentile(95));
  report.Add("write_p99_us", writes.Percentile(99));
  report.Add("ok", ok);
  report.Add("not_found", not_found);
  report.Add("busy", busy);
  report.Add("errors", errors);
  report.WriteTo(config.json_path);

  if (kv_server != nullptr) kv_server->Shutdown();
  // Errors (not kBusy/kNotFound, which are expected under load) fail the
  // run so CI can gate on the exit code.
  return errors == 0 ? 0 : 2;
}
