// Closed-loop load generator for the KV serving front end: N client threads,
// each with its own RpcClient and a configurable pipelining depth, drive a
// read/write mix against a server and report per-op latency percentiles
// (p50/p95/p99 via common/histogram.h) plus aggregate throughput.
//
// By default it hosts the whole stack in-process — a small mint::MintCluster
// behind a KvServer on an ephemeral localhost port — so one command
// exercises sockets, framing, admission control, the worker pool, and the
// engines end to end:
//
//   build/bench/server_loadgen --threads 8 --ops-per-thread 2000
//
// Point it at an external server instead (e.g. `qindb_shell --serve 7000`):
//
//   build/bench/server_loadgen --connect 127.0.0.1:7000 --threads 8
//
// Closed loop means each thread keeps at most `--pipeline` requests in
// flight and issues the next only when one completes — offered load adapts
// to service rate, which is the regime the tail-latency literature measures.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/report.h"
#include "bifrost/wire/bulk_loader.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "mint/coordinator.h"
#include "rpc/client.h"
#include "server/kv_server.h"
#include "server/node_process.h"

#ifndef DMINT_NODE_BINARY
#define DMINT_NODE_BINARY "dmint_node"
#endif

using namespace directload;

namespace {

struct LoadgenConfig {
  int threads = 8;
  int ops_per_thread = 2000;
  int write_pct = 20;       // Remainder are GetLatest reads.
  int pipeline = 1;         // Requests in flight per thread.
  int value_bytes = 128;
  int key_space = 4096;
  /// Write ops per request frame. 1 sends plain PUT frames; > 1 packs that
  /// many PUTs into one kWriteBatch frame — the client half of group
  /// commit, amortizing the round trip over the batch.
  int batch = 1;
  /// KvServerOptions::max_write_batch for the in-process server; <= 0
  /// keeps the server default.
  int server_max_write_batch = 0;
  /// Engine shards per node for the in-process cluster; 0 keeps the engine
  /// default (hardware_concurrency). Ignored with --connect.
  int shards = 0;
  /// Zipfian skew for the mixed-workload key draw; 0 keeps the legacy
  /// uniform draw. Read-mostly cache runs use ~0.99 (YCSB's default) so a
  /// hot set emerges for the block cache to capture.
  double zipf_theta = 0;
  /// AOF block cache budget per node engine, in MiB (0 = cache off).
  /// Ignored with --connect.
  int cache_mb = 0;
  /// Write version 1 over the whole key space before measuring, so a
  /// read-mostly run starts from a fully populated store instead of a
  /// NotFound storm.
  bool preload = false;
  /// Rollover mode: preload version 1 over the key space, then stream a
  /// full version 2 into the live server with a BulkLoader while closed-loop
  /// Zipfian readers measure serving latency through the load. `threads`
  /// becomes the reader count and `ops_per_thread`/`write_pct`/`batch` are
  /// ignored.
  bool rollover = false;
  int rollover_slice_kb = 256;         // Pair payload per bulk slice.
  double rollover_bandwidth_mbps = 0;  // <= 0 = unpaced shipping.
  /// Fails the run (exit 2) when the read p99 observed *during* the bulk
  /// load exceeds this many microseconds; 0 disables the gate.
  double read_p99_gate_us = 0;
  std::string json_path;     // Empty = no JSON summary.
  std::string connect_host;  // Empty = host an in-process server.
  uint16_t connect_port = 0;

  /// Cluster mode: fork a fleet of dmint_node processes (groups x replicas),
  /// drive a closed-loop Zipfian mix through a MintCoordinator, and verify
  /// at the end that every acked write reads back. With --kill-replica the
  /// run SIGKILLs one replica mid-load, restarts it, heals it with
  /// RepairNode, and still demands zero acked-write loss — the paper's
  /// robustness claim as an executable gate.
  bool cluster = false;
  int cluster_groups = 2;
  int cluster_replicas = 3;
  bool kill_replica = false;
  double phase_seconds = 3.0;
  /// Fails the run (exit 2) when the read p99 while a replica is dead
  /// exceeds this factor of the healthy-phase read p99; 0 disables.
  double degraded_p99_factor = 0;
  std::string node_binary = DMINT_NODE_BINARY;
};

struct ThreadResult {
  Histogram read_latency_us;
  Histogram write_latency_us;
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t not_found = 0;  // Reads of keys no write has landed on yet.
  uint64_t errors = 0;
  /// Ops beyond one per completed frame (batched writes land `batch` ops
  /// per request, but one latency sample).
  uint64_t extra_ops = 0;
};

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

void RunClientThread(const LoadgenConfig& config, const std::string& host,
                     uint16_t port, int thread_id,
                     std::atomic<uint64_t>* next_version,
                     ThreadResult* result) {
  rpc::RpcClient client(host, port);
  if (!client.Connect().ok()) {
    result->errors += config.ops_per_thread;
    return;
  }
  Random rng(0x10adull * (thread_id + 1));
  const std::string value(config.value_bytes, 'x');
  ZipfianGenerator zipf(config.key_space,
                        config.zipf_theta > 0 ? config.zipf_theta : 0.99,
                        0x5eedull * (thread_id + 1));
  auto draw_key = [&]() -> uint64_t {
    return config.zipf_theta > 0 ? zipf.Next()
                                 : rng.Uniform(config.key_space);
  };

  struct InFlight {
    Clock::time_point sent;
    bool is_write = false;
  };
  std::map<uint64_t, InFlight> in_flight;
  int issued = 0, completed = 0;

  auto issue_one = [&]() -> bool {
    rpc::Frame request;
    request.request_id = client.NextRequestId();
    const bool is_write =
        static_cast<int>(rng.Uniform(100)) < config.write_pct;
    const std::string key = "bench:k" + std::to_string(draw_key());
    if (is_write && config.batch > 1) {
      // One kWriteBatch frame carrying `batch` PUTs: `batch` ops for one
      // round trip and (server-side) one engine commit per node.
      std::vector<rpc::BatchOp> ops(config.batch);
      for (rpc::BatchOp& op : ops) {
        op.version = next_version->fetch_add(1);
        op.key = "bench:k" + std::to_string(draw_key());
        op.value = value;
      }
      request.op = rpc::Opcode::kWriteBatch;
      rpc::EncodeBatchOps(ops, &request.value);
    } else if (is_write) {
      request.op = rpc::Opcode::kPut;
      request.version = next_version->fetch_add(1);
      request.key = key;
      request.value = value;
    } else {
      request.op = rpc::Opcode::kGet;
      request.latest = true;
      request.key = key;
    }
    InFlight tracking{Clock::now(), is_write};
    if (!client.Send(request).ok()) return false;
    in_flight.emplace(request.request_id, tracking);
    ++issued;
    return true;
  };

  auto complete_one = [&]() -> bool {
    Result<rpc::Frame> response = client.Receive();
    if (!response.ok()) return false;
    auto it = in_flight.find(response->request_id);
    if (it == in_flight.end()) return true;  // Stale id; ignore.
    const double micros = MicrosSince(it->second.sent);
    if (it->second.is_write) {
      result->write_latency_us.Add(micros);
      if (response->op == rpc::Opcode::kWriteBatch) {
        result->extra_ops += config.batch - 1;
      }
    } else {
      result->read_latency_us.Add(micros);
    }
    switch (response->status) {
      case StatusCode::kOk:
        ++result->ok;
        break;
      case StatusCode::kBusy:
        ++result->busy;
        break;
      case StatusCode::kNotFound:
        ++result->not_found;
        break;
      default:
        ++result->errors;
        break;
    }
    in_flight.erase(it);
    ++completed;
    return true;
  };

  while (completed < config.ops_per_thread) {
    while (issued < config.ops_per_thread &&
           static_cast<int>(in_flight.size()) < config.pipeline) {
      if (!issue_one()) {
        result->errors += config.ops_per_thread - completed;
        return;
      }
    }
    if (!complete_one()) {
      result->errors += config.ops_per_thread - completed;
      return;
    }
  }
}

void PrintPercentiles(const char* label, const Histogram& h) {
  std::printf("%-7s count=%-8llu p50=%8.1fus p95=%8.1fus p99=%8.1fus "
              "mean=%8.1fus max=%8.1fus\n",
              label, (unsigned long long)h.count(), h.Percentile(50),
              h.Percentile(95), h.Percentile(99), h.Mean(), h.max());
}

// ---------------------------------------------------------------------------
// Rollover mode: bulk-stream a new version into the serving path while
// closed-loop Zipfian readers measure what the load does to read tails.
// ---------------------------------------------------------------------------

std::string BenchKey(uint64_t i) { return "bench:k" + std::to_string(i); }

/// One reader: closed-loop (depth 1) GetLatest over a Zipfian key draw, until
/// `stop` flips. Latency lands in `result->read_latency_us`; reads answered
/// with an error status count as `errors` and fail the run.
void RunRolloverReader(const LoadgenConfig& config, const std::string& host,
                       uint16_t port, int thread_id,
                       const std::atomic<bool>* stop, ThreadResult* result) {
  rpc::RpcClient client(host, port);
  if (!client.Connect().ok()) {
    ++result->errors;
    return;
  }
  ZipfianGenerator zipf(config.key_space, 0.99, 0x5eedull * (thread_id + 1));
  while (!stop->load(std::memory_order_relaxed)) {
    rpc::Frame request;
    request.op = rpc::Opcode::kGet;
    request.latest = true;
    request.request_id = client.NextRequestId();
    request.key = BenchKey(zipf.Next());
    const Clock::time_point sent = Clock::now();
    if (!client.Send(request).ok()) {
      ++result->errors;
      return;
    }
    Result<rpc::Frame> response = client.Receive();
    if (!response.ok()) {
      ++result->errors;
      return;
    }
    result->read_latency_us.Add(MicrosSince(sent));
    switch (response->status) {
      case StatusCode::kOk:
        ++result->ok;
        break;
      case StatusCode::kBusy:
        ++result->busy;
        break;
      case StatusCode::kNotFound:
        ++result->not_found;  // A key the preload has not reached yet.
        break;
      default:
        ++result->errors;
        break;
    }
  }
}

/// Preloads version `version` of every key through kWriteBatch frames.
Status PreloadVersion(const std::string& host, uint16_t port,
                      const LoadgenConfig& config, uint64_t version,
                      const std::string& value) {
  rpc::RpcClient client(host, port);
  if (Status s = client.Connect(); !s.ok()) return s;
  constexpr int kOpsPerFrame = 128;
  for (int base = 0; base < config.key_space; base += kOpsPerFrame) {
    const int n = std::min(kOpsPerFrame, config.key_space - base);
    std::vector<rpc::BatchOp> ops(n);
    for (int i = 0; i < n; ++i) {
      ops[i].version = version;
      ops[i].key = BenchKey(base + i);
      ops[i].value = value;
    }
    rpc::Frame request;
    request.op = rpc::Opcode::kWriteBatch;
    request.request_id = client.NextRequestId();
    rpc::EncodeBatchOps(ops, &request.value);
    if (Status s = client.Send(request); !s.ok()) return s;
    Result<rpc::Frame> response = client.Receive();
    if (!response.ok()) return response.status();
    if (response->status != StatusCode::kOk) {
      return rpc::StatusFromWire(response->status, response->value);
    }
  }
  return Status::OK();
}

int RunRollover(const LoadgenConfig& config, const std::string& host,
                uint16_t port) {
  const std::string v1_value(config.value_bytes, 'a');
  const std::string v2_value(config.value_bytes, 'b');
  std::printf("rollover: preloading v1 over %d keys...\n", config.key_space);
  if (Status s = PreloadVersion(host, port, config, 1, v1_value); !s.ok()) {
    std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Readers start before the bulk load and stop after its commit, so their
  // histogram is the read tail *through* the rollover.
  std::atomic<bool> stop{false};
  std::vector<ThreadResult> results(config.threads);
  std::vector<std::thread> readers;
  readers.reserve(config.threads);
  for (int t = 0; t < config.threads; ++t) {
    readers.emplace_back(RunRolloverReader, std::cref(config), std::cref(host),
                         port, t, &stop, &results[t]);
  }

  // The new version: a full replacement of the key space, split across the
  // two streams so both rate-limiter buckets carry traffic.
  std::vector<bifrost::ShippedPair> summary;
  std::vector<bifrost::ShippedPair> inverted;
  for (int i = 0; i < config.key_space; ++i) {
    bifrost::ShippedPair pair;
    pair.key = BenchKey(i);
    pair.value = v2_value;
    (i % 2 == 0 ? summary : inverted).push_back(std::move(pair));
  }

  rpc::RpcClient bulk_client(host, port);
  Status s = bulk_client.Connect();
  bifrost::wire::BulkLoadReport bulk_report;
  double load_seconds = 0;
  if (s.ok()) {
    bifrost::wire::BulkLoadOptions options;
    options.slice_bytes = static_cast<uint64_t>(config.rollover_slice_kb)
                          << 10;
    options.bandwidth_bytes_per_sec =
        config.rollover_bandwidth_mbps * 1024 * 1024;
    bifrost::wire::BulkLoader loader(&bulk_client, options);
    const Clock::time_point start = Clock::now();
    s = loader.Load(/*version=*/2, summary, inverted, /*deletes=*/{},
                    &bulk_report);
    load_seconds = MicrosSince(start) * 1e-6;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  if (!s.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The committed version must serve: every sampled key reads back v2.
  uint64_t verify_failures = 0;
  {
    rpc::RpcClient verify(host, port);
    if (!verify.Connect().ok()) {
      ++verify_failures;
    } else {
      const int step = std::max(1, config.key_space / 256);
      for (int i = 0; i < config.key_space; i += step) {
        rpc::Frame request;
        request.op = rpc::Opcode::kGet;
        request.latest = true;
        request.request_id = verify.NextRequestId();
        request.key = BenchKey(i);
        if (!verify.Send(request).ok()) {
          ++verify_failures;
          break;
        }
        Result<rpc::Frame> response = verify.Receive();
        if (!response.ok() || response->status != StatusCode::kOk ||
            response->value != v2_value) {
          ++verify_failures;
        }
      }
    }
  }

  Histogram reads;
  uint64_t ok = 0, busy = 0, not_found = 0, errors = 0;
  for (const ThreadResult& r : results) {
    reads.Merge(r.read_latency_us);
    ok += r.ok;
    busy += r.busy;
    not_found += r.not_found;
    errors += r.errors;
  }
  const double pairs_per_sec =
      load_seconds > 0 ? bulk_report.pairs_total / load_seconds : 0.0;

  std::printf("rollover: v2 committed in %.2fs (%llu pairs, %llu slices, "
              "%llu bytes, %llu resends, %llu repair rounds)\n",
              load_seconds, (unsigned long long)bulk_report.pairs_total,
              (unsigned long long)bulk_report.slices_total,
              (unsigned long long)bulk_report.bytes_shipped,
              (unsigned long long)bulk_report.slices_resent,
              (unsigned long long)bulk_report.repair_rounds);
  PrintPercentiles("reads", reads);
  std::printf("status: ok=%llu not_found=%llu busy=%llu errors=%llu "
              "verify_failures=%llu\n",
              (unsigned long long)ok, (unsigned long long)not_found,
              (unsigned long long)busy, (unsigned long long)errors,
              (unsigned long long)verify_failures);

  const double read_p99 = reads.Percentile(99);
  bool gate_failed = false;
  if (config.read_p99_gate_us > 0 && read_p99 > config.read_p99_gate_us) {
    std::fprintf(stderr,
                 "read p99 gate FAILED: %.1fus > %.1fus during rollover\n",
                 read_p99, config.read_p99_gate_us);
    gate_failed = true;
  }

  bench::JsonReport report;
  report.AddString("bench", "server_loadgen_rollover");
  report.Add("reader_threads", config.threads);
  report.Add("key_space", config.key_space);
  report.Add("value_bytes", config.value_bytes);
  report.Add("slice_kb", config.rollover_slice_kb);
  report.Add("bandwidth_mbps", config.rollover_bandwidth_mbps);
  report.Add("load_seconds", load_seconds);
  report.Add("bulk_pairs", bulk_report.pairs_total);
  report.Add("bulk_slices", bulk_report.slices_total);
  report.Add("bulk_bytes_shipped", bulk_report.bytes_shipped);
  report.Add("bulk_slices_resent", bulk_report.slices_resent);
  report.Add("bulk_repair_rounds", bulk_report.repair_rounds);
  report.Add("bulk_pairs_per_sec", pairs_per_sec);
  report.Add("reads_completed", reads.count());
  report.Add("read_p50_us", reads.Percentile(50));
  report.Add("read_p95_us", reads.Percentile(95));
  report.Add("read_p99_us", read_p99);
  report.Add("read_p99_gate_us", config.read_p99_gate_us);
  report.Add("not_found", not_found);
  report.Add("busy", busy);
  report.Add("errors", errors);
  report.Add("verify_failures", verify_failures);
  report.WriteTo(config.json_path);

  return (errors == 0 && verify_failures == 0 && !gate_failed) ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Cluster mode: replicated node processes under a coordinator, with an
// optional kill-a-replica chaos arm.
// ---------------------------------------------------------------------------

/// Phases of the chaos schedule; worker threads tag each op's latency with
/// the phase that was current when the op was issued.
enum ClusterPhase { kHealthy = 0, kDegraded = 1, kRecovered = 2 };
constexpr int kNumPhases = 3;

const char* PhaseName(int phase) {
  switch (phase) {
    case kHealthy:
      return "healthy";
    case kDegraded:
      return "degraded";
    default:
      return "recovered";
  }
}

/// The value of (key, version) is a pure function of both, so the final
/// verification pass can recompute what every acked write must read back as.
std::string ClusterValue(const std::string& key, uint64_t version,
                         int value_bytes) {
  std::string value = key + "#" + std::to_string(version);
  if (static_cast<int>(value.size()) < value_bytes) {
    value.append(value_bytes - value.size(), 'x');
  }
  return value;
}

struct AckedWrite {
  std::string key;
  uint64_t version = 0;
};

struct ClusterThreadResult {
  Histogram read_latency_us[kNumPhases];
  Histogram write_latency_us[kNumPhases];
  std::vector<AckedWrite> acked;
  uint64_t read_ok = 0;
  uint64_t read_not_found = 0;  // Keys no write has landed on yet.
  uint64_t read_errors = 0;
  uint64_t write_rejected = 0;  // Quorum misses: NOT acked, may be lost.
};

/// One closed-loop worker: Zipfian key draw, write_pct writes through
/// MintCoordinator::Put (recording every ack), the rest hedged GetLatest
/// reads. Runs until `stop` flips.
void RunClusterWorker(const LoadgenConfig& config,
                      mint::MintCoordinator* coordinator, int thread_id,
                      const std::atomic<int>* phase,
                      const std::atomic<bool>* stop,
                      std::atomic<uint64_t>* next_version,
                      ClusterThreadResult* result) {
  Random rng(0xc1a5ull * (thread_id + 1));
  ZipfianGenerator zipf(config.key_space, 0.99, 0x5eedull * (thread_id + 1));
  while (!stop->load(std::memory_order_relaxed)) {
    const int op_phase = phase->load(std::memory_order_relaxed);
    const std::string key = BenchKey(zipf.Next());
    const bool is_write =
        static_cast<int>(rng.Uniform(100)) < config.write_pct;
    const Clock::time_point sent = Clock::now();
    if (is_write) {
      const uint64_t version = next_version->fetch_add(1);
      const std::string value =
          ClusterValue(key, version, config.value_bytes);
      const Status s = coordinator->Put(key, version, value);
      result->write_latency_us[op_phase].Add(MicrosSince(sent));
      if (s.ok()) {
        result->acked.push_back(AckedWrite{key, version});
      } else {
        // Not acknowledged: the write may or may not survive, and the
        // verification pass makes no claim about it. What it must never
        // see is a *successful* Put whose pair is gone.
        ++result->write_rejected;
      }
    } else {
      Result<mint::MintCoordinator::ReadResult> read =
          coordinator->GetLatest(key);
      result->read_latency_us[op_phase].Add(MicrosSince(sent));
      if (read.ok()) {
        ++result->read_ok;
      } else if (read.status().IsNotFound()) {
        ++result->read_not_found;
      } else {
        ++result->read_errors;
      }
    }
  }
}

int RunCluster(const LoadgenConfig& config) {
  // -- The fleet: groups x replicas node processes --------------------------
  const int num_nodes = config.cluster_groups * config.cluster_replicas;
  std::printf("cluster: forking %d dmint_node processes (%d groups x %d "
              "replicas) from %s\n",
              num_nodes, config.cluster_groups, config.cluster_replicas,
              config.node_binary.c_str());
  std::vector<server::NodeProcess> nodes(num_nodes);
  std::vector<std::vector<mint::NodeEndpoint>> endpoints(
      config.cluster_groups);
  for (int i = 0; i < num_nodes; ++i) {
    Status s = nodes[i].Start(config.node_binary, /*port=*/0,
                              std::max(1, config.shards));
    if (!s.ok()) {
      std::fprintf(stderr, "node %d start failed: %s\n", i,
                   s.ToString().c_str());
      return 1;
    }
    mint::NodeEndpoint endpoint;
    endpoint.port = nodes[i].port();
    endpoints[i / config.cluster_replicas].push_back(endpoint);
  }

  mint::CoordinatorOptions coord_options;
  coord_options.replicas = config.cluster_replicas;
  mint::MintCoordinator coordinator(endpoints, coord_options);
  if (Status s = coordinator.Start(); !s.ok()) {
    std::fprintf(stderr, "coordinator start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // -- The load, phase by phase ---------------------------------------------
  std::atomic<int> phase{kHealthy};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_version{1};
  std::vector<ClusterThreadResult> results(config.threads);
  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back(RunClusterWorker, std::cref(config), &coordinator, t,
                         &phase, &stop, &next_version, &results[t]);
  }
  const auto run_phase = [&](ClusterPhase p) {
    phase.store(p, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.phase_seconds));
  };

  run_phase(kHealthy);

  // The victim: the last node of group 0 — an ordinary replica, nothing
  // special about it, which is the point.
  const int victim = config.cluster_replicas - 1;
  uint64_t repaired_pairs = 0;
  uint64_t missing_after_repair = 0;
  bool repair_failed = false;
  if (config.kill_replica) {
    std::printf("cluster: SIGKILL node %d (port %u) mid-load\n", victim,
                nodes[victim].port());
    nodes[victim].Kill();
    run_phase(kDegraded);

    Status restarted = nodes[victim].Restart();
    if (!restarted.ok()) {
      std::fprintf(stderr, "node %d restart failed: %s\n", victim,
                   restarted.ToString().c_str());
      repair_failed = true;
    } else {
      // The restarted node is empty (its simulated SSD died with the
      // process); re-replicate its share from the surviving peers, over
      // RPC, while the load keeps running.
      Result<uint64_t> repaired = coordinator.RepairNode(victim);
      if (!repaired.ok()) {
        std::fprintf(stderr, "repair of node %d failed: %s\n", victim,
                     repaired.status().ToString().c_str());
        repair_failed = true;
      } else {
        repaired_pairs = *repaired;
      }
    }
    run_phase(kRecovered);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();

  // -- Verification: no acked write may be lost -----------------------------
  // The fleet is whole again (or was never harmed), so every write the
  // coordinator acknowledged must read back exactly. This closes the loop
  // on the durability claim: quorum acks + repair == no lost acks.
  uint64_t acked_total = 0;
  uint64_t lost_acks = 0;
  for (const ClusterThreadResult& r : results) {
    acked_total += r.acked.size();
    for (const AckedWrite& w : r.acked) {
      Result<mint::MintCoordinator::ReadResult> read =
          coordinator.Get(w.key, w.version);
      const std::string expected =
          ClusterValue(w.key, w.version, config.value_bytes);
      if (!read.ok() || read->value != expected) {
        if (lost_acks < 5) {
          std::fprintf(stderr, "LOST ACKED WRITE: %s @%llu (%s)\n",
                       w.key.c_str(), (unsigned long long)w.version,
                       read.ok() ? "wrong value"
                                 : read.status().ToString().c_str());
        }
        ++lost_acks;
      }
    }
  }
  if (config.kill_replica && !repair_failed) {
    Result<uint64_t> missing = coordinator.VerifyNodeComplete(victim);
    if (!missing.ok()) {
      std::fprintf(stderr, "verify of node %d failed: %s\n", victim,
                   missing.status().ToString().c_str());
      repair_failed = true;
    } else {
      missing_after_repair = *missing;
    }
  }

  // -- Reporting ------------------------------------------------------------
  Histogram reads[kNumPhases], writes[kNumPhases];
  uint64_t read_ok = 0, read_not_found = 0, read_errors = 0;
  uint64_t write_rejected = 0;
  for (const ClusterThreadResult& r : results) {
    for (int p = 0; p < kNumPhases; ++p) {
      reads[p].Merge(r.read_latency_us[p]);
      writes[p].Merge(r.write_latency_us[p]);
    }
    read_ok += r.read_ok;
    read_not_found += r.read_not_found;
    read_errors += r.read_errors;
    write_rejected += r.write_rejected;
  }
  const int last_phase = config.kill_replica ? kNumPhases : 1;
  for (int p = 0; p < last_phase; ++p) {
    char label[32];
    std::snprintf(label, sizeof(label), "r-%s", PhaseName(p));
    PrintPercentiles(label, reads[p]);
    std::snprintf(label, sizeof(label), "w-%s", PhaseName(p));
    PrintPercentiles(label, writes[p]);
  }
  const mint::MintCoordinator::Counters counters = coordinator.counters();
  std::printf("coordinator: acked=%llu quorum_failures=%llu "
              "replica_write_failures=%llu hedged=%llu hedge_wins=%llu "
              "failovers=%llu hb_misses=%llu\n",
              (unsigned long long)counters.writes_acked,
              (unsigned long long)counters.write_quorum_failures,
              (unsigned long long)counters.replica_write_failures,
              (unsigned long long)counters.hedged_reads,
              (unsigned long long)counters.hedge_wins,
              (unsigned long long)counters.read_failovers,
              (unsigned long long)counters.heartbeat_misses);
  std::printf("durability: acked=%llu lost=%llu rejected=%llu "
              "repaired_pairs=%llu missing_after_repair=%llu\n",
              (unsigned long long)acked_total, (unsigned long long)lost_acks,
              (unsigned long long)write_rejected,
              (unsigned long long)repaired_pairs,
              (unsigned long long)missing_after_repair);

  bool gate_failed = false;
  const double healthy_p99 = reads[kHealthy].Percentile(99);
  const double degraded_p99 = reads[kDegraded].Percentile(99);
  if (config.kill_replica && config.degraded_p99_factor > 0 &&
      reads[kDegraded].count() > 0 &&
      degraded_p99 > healthy_p99 * config.degraded_p99_factor) {
    std::fprintf(stderr,
                 "degraded read p99 gate FAILED: %.1fus > %.2f x %.1fus\n",
                 degraded_p99, config.degraded_p99_factor, healthy_p99);
    gate_failed = true;
  }

  bench::JsonReport report;
  report.AddString("bench", "server_loadgen_cluster");
  report.Add("groups", config.cluster_groups);
  report.Add("replicas", config.cluster_replicas);
  report.Add("threads", config.threads);
  report.Add("write_pct", config.write_pct);
  report.Add("phase_seconds", config.phase_seconds);
  report.Add("kill_replica", config.kill_replica ? 1 : 0);
  report.Add("acked_writes", acked_total);
  report.Add("lost_acked_writes", lost_acks);
  report.Add("rejected_writes", write_rejected);
  report.Add("repaired_pairs", repaired_pairs);
  report.Add("missing_after_repair", missing_after_repair);
  report.Add("read_ok", read_ok);
  report.Add("read_not_found", read_not_found);
  report.Add("read_errors", read_errors);
  report.Add("hedged_reads", counters.hedged_reads);
  report.Add("hedge_wins", counters.hedge_wins);
  report.Add("read_failovers", counters.read_failovers);
  report.Add("healthy_read_p99_us", healthy_p99);
  report.Add("degraded_read_p99_us", degraded_p99);
  report.Add("recovered_read_p99_us", reads[kRecovered].Percentile(99));
  report.WriteTo(config.json_path);

  coordinator.Stop();
  for (server::NodeProcess& node : nodes) {
    if (node.running()) {
      DL_DISCARD_STATUS("best-effort teardown of the fleet",
                        node.Terminate());
    }
  }

  const bool durable = lost_acks == 0 && !repair_failed &&
                       missing_after_repair == 0;
  return (durable && !gate_failed) ? 0 : 2;
}

bool ParseArgs(int argc, char** argv, LoadgenConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--threads") {
      if (!next_int(&config->threads)) return false;
    } else if (arg == "--ops-per-thread") {
      if (!next_int(&config->ops_per_thread)) return false;
    } else if (arg == "--write-pct") {
      if (!next_int(&config->write_pct)) return false;
    } else if (arg == "--pipeline") {
      if (!next_int(&config->pipeline)) return false;
    } else if (arg == "--value-bytes") {
      if (!next_int(&config->value_bytes)) return false;
    } else if (arg == "--keys") {
      if (!next_int(&config->key_space)) return false;
    } else if (arg == "--batch") {
      if (!next_int(&config->batch)) return false;
    } else if (arg == "--server-max-write-batch") {
      if (!next_int(&config->server_max_write_batch)) return false;
    } else if (arg == "--shards") {
      if (!next_int(&config->shards)) return false;
    } else if (arg == "--read-pct") {
      int read_pct = 0;
      if (!next_int(&read_pct) || read_pct < 0 || read_pct > 100) {
        return false;
      }
      config->write_pct = 100 - read_pct;
    } else if (arg == "--zipf-theta") {
      if (i + 1 >= argc) return false;
      config->zipf_theta = std::atof(argv[++i]);
    } else if (arg == "--cache-mb") {
      if (!next_int(&config->cache_mb)) return false;
    } else if (arg == "--preload") {
      config->preload = true;
    } else if (arg == "--rollover") {
      config->rollover = true;
    } else if (arg == "--rollover-slice-kb") {
      if (!next_int(&config->rollover_slice_kb)) return false;
    } else if (arg == "--rollover-bandwidth-mbps") {
      if (i + 1 >= argc) return false;
      config->rollover_bandwidth_mbps = std::atof(argv[++i]);
    } else if (arg == "--read-p99-gate-us") {
      if (i + 1 >= argc) return false;
      config->read_p99_gate_us = std::atof(argv[++i]);
    } else if (arg == "--cluster") {
      config->cluster = true;
    } else if (arg == "--cluster-groups") {
      if (!next_int(&config->cluster_groups)) return false;
    } else if (arg == "--cluster-replicas") {
      if (!next_int(&config->cluster_replicas)) return false;
    } else if (arg == "--kill-replica") {
      config->kill_replica = true;
    } else if (arg == "--phase-seconds") {
      if (i + 1 >= argc) return false;
      config->phase_seconds = std::atof(argv[++i]);
    } else if (arg == "--degraded-p99-factor") {
      if (i + 1 >= argc) return false;
      config->degraded_p99_factor = std::atof(argv[++i]);
    } else if (arg == "--node-binary") {
      if (i + 1 >= argc) return false;
      config->node_binary = argv[++i];
    } else if (arg == "--connect") {
      if (i + 1 >= argc) return false;
      const std::string target = argv[++i];
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos) return false;
      config->connect_host = target.substr(0, colon);
      config->connect_port =
          static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return config->threads > 0 && config->ops_per_thread > 0 &&
         config->pipeline > 0 && config->write_pct >= 0 &&
         config->write_pct <= 100 && config->batch > 0 &&
         config->shards >= 0 && config->rollover_slice_kb > 0 &&
         config->cluster_groups > 0 && config->cluster_replicas > 0 &&
         config->phase_seconds > 0;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config;
  config.json_path = bench::ExtractJsonFlag(&argc, argv);
  if (!ParseArgs(argc, argv, &config)) {
    std::fprintf(stderr,
                 "usage: server_loadgen [--threads N] [--ops-per-thread M]\n"
                 "         [--write-pct P] [--pipeline D] [--value-bytes B]\n"
                 "         [--keys K] [--batch W] [--server-max-write-batch S]\n"
                 "         [--shards N] [--json=PATH] [--connect host:port]\n"
                 "         [--read-pct P] [--zipf-theta T] [--cache-mb C]\n"
                 "         [--preload]\n"
                 "         [--rollover] [--rollover-slice-kb KB]\n"
                 "         [--rollover-bandwidth-mbps M] "
                 "[--read-p99-gate-us U]\n"
                 "         [--cluster] [--cluster-groups G] "
                 "[--cluster-replicas R]\n"
                 "         [--kill-replica] [--phase-seconds S]\n"
                 "         [--degraded-p99-factor F] [--node-binary PATH]\n");
    return 1;
  }

  if (config.cluster) return RunCluster(config);

  // The served stack, when not connecting to an external server.
  std::unique_ptr<mint::MintCluster> cluster;
  std::unique_ptr<server::KvServer> kv_server;
  std::string host = config.connect_host;
  uint16_t port = config.connect_port;
  if (host.empty()) {
    mint::MintOptions mint_options;
    mint_options.num_groups = 2;
    mint_options.nodes_per_group = 1;
    mint_options.replicas = 1;
    mint_options.parallel_reads = false;
    mint_options.engine.aof.segment_bytes = 8 << 20;
    mint_options.engine.num_shards = static_cast<uint32_t>(config.shards);
    mint_options.engine.cache_bytes =
        static_cast<uint64_t>(config.cache_mb) << 20;
    cluster = std::make_unique<mint::MintCluster>(mint_options);
    Status s = cluster->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "cluster start failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    server::KvServerOptions server_options;
    if (config.server_max_write_batch > 0) {
      server_options.max_write_batch =
          static_cast<size_t>(config.server_max_write_batch);
    }
    kv_server = std::make_unique<server::KvServer>(cluster.get(),
                                                   server_options);
    s = kv_server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    host = "127.0.0.1";
    port = kv_server->port();
    std::printf("hosting in-process server on 127.0.0.1:%u\n", port);
  }

  if (config.rollover) {
    const int rc = RunRollover(config, host, port);
    if (kv_server != nullptr) kv_server->Shutdown();
    return rc;
  }

  std::printf("loadgen: %d threads x %d requests, %d%% writes, pipeline "
              "depth %d, %dB values, %d keys, %d write ops/frame, "
              "zipf=%.2f, cache=%dMiB\n",
              config.threads, config.ops_per_thread, config.write_pct,
              config.pipeline, config.value_bytes, config.key_space,
              config.batch, config.zipf_theta, config.cache_mb);

  if (config.preload) {
    const std::string v1_value(config.value_bytes, 'p');
    std::printf("preloading v1 over %d keys...\n", config.key_space);
    if (Status s = PreloadVersion(host, port, config, 1, v1_value);
        !s.ok()) {
      std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::atomic<uint64_t> next_version{2};
  std::vector<ThreadResult> results(config.threads);
  std::vector<std::thread> threads;
  threads.reserve(config.threads);
  // Simulated device time consumed by the nodes (SimClock micros): the
  // machine-independent cost a real SSD would add to the wall numbers. A
  // cache hit skips the device entirely, so this is where the cache's
  // effect is measured free of loopback-socket noise. Unavailable (zero)
  // when pointed at an external server.
  auto device_micros_now = [&]() -> uint64_t {
    if (cluster == nullptr) return 0;
    uint64_t total = 0;
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      total += cluster->node(n)->clock()->NowMicros();
    }
    return total;
  };
  const uint64_t device_micros_before = device_micros_now();
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < config.threads; ++t) {
    threads.emplace_back(RunClientThread, std::cref(config), std::cref(host),
                         port, t, &next_version, &results[t]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_seconds = MicrosSince(start) * 1e-6;
  const uint64_t device_micros = device_micros_now() - device_micros_before;

  Histogram reads, writes;
  uint64_t ok = 0, busy = 0, not_found = 0, errors = 0, extra_ops = 0;
  for (const ThreadResult& r : results) {
    reads.Merge(r.read_latency_us);
    writes.Merge(r.write_latency_us);
    ok += r.ok;
    busy += r.busy;
    not_found += r.not_found;
    errors += r.errors;
    extra_ops += r.extra_ops;
  }
  const uint64_t completed = reads.count() + writes.count() + extra_ops;
  const double ops_per_sec =
      elapsed_seconds > 0 ? completed / elapsed_seconds : 0.0;

  PrintPercentiles("reads", reads);
  PrintPercentiles("writes", writes);
  std::printf("status: ok=%llu not_found=%llu busy=%llu errors=%llu\n",
              (unsigned long long)ok, (unsigned long long)not_found,
              (unsigned long long)busy, (unsigned long long)errors);
  std::printf("throughput: %.0f ops/s (%llu ops in %.2fs)\n", ops_per_sec,
              (unsigned long long)completed, elapsed_seconds);
  // Modeled throughput = ops over wall time PLUS the simulated device time
  // the run consumed — what the same run costs when the 80us/page device
  // model is real hardware instead of a SimClock entry.
  const double modeled_seconds =
      elapsed_seconds + static_cast<double>(device_micros) * 1e-6;
  const double modeled_ops_per_sec =
      modeled_seconds > 0 ? completed / modeled_seconds : 0.0;
  if (device_micros > 0) {
    std::printf("modeled (wall + device time): %.0f ops/s (%.3fs device)\n",
                modeled_ops_per_sec,
                static_cast<double>(device_micros) * 1e-6);
  }

  bench::JsonReport report;
  report.AddString("bench", "server_loadgen");
  report.Add("threads", config.threads);
  report.Add("ops_per_thread", config.ops_per_thread);
  report.Add("write_pct", config.write_pct);
  report.Add("pipeline", config.pipeline);
  report.Add("batch", config.batch);
  report.Add("value_bytes", config.value_bytes);
  report.Add("shards", config.shards);
  report.Add("zipf_theta", config.zipf_theta);
  report.Add("cache_mb", config.cache_mb);
  report.Add("ops_per_sec", ops_per_sec);
  report.Add("device_micros", device_micros);
  report.Add("modeled_ops_per_sec", modeled_ops_per_sec);
  report.Add("completed_ops", completed);
  report.Add("read_p50_us", reads.Percentile(50));
  report.Add("read_p95_us", reads.Percentile(95));
  report.Add("read_p99_us", reads.Percentile(99));
  report.Add("write_p50_us", writes.Percentile(50));
  report.Add("write_p95_us", writes.Percentile(95));
  report.Add("write_p99_us", writes.Percentile(99));
  report.Add("ok", ok);
  report.Add("not_found", not_found);
  report.Add("busy", busy);
  report.Add("errors", errors);
  report.WriteTo(config.json_path);

  if (kv_server != nullptr) kv_server->Shutdown();
  // Errors (not kBusy/kNotFound, which are expected under load) fail the
  // run so CI can gate on the exit code.
  return errors == 0 ? 0 : 2;
}
