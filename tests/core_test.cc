#include <gtest/gtest.h>

#include "core/directload.h"

namespace directload::core {
namespace {

DirectLoadOptions SmallPipeline() {
  DirectLoadOptions o;
  o.corpus.num_docs = 120;
  o.corpus.vocab_size = 800;
  o.corpus.terms_per_doc = 12;
  o.corpus.abstract_bytes = 1024;
  o.corpus.seed = 11;
  o.delivery.backbone_bytes_per_sec = 40e6;
  o.delivery.interregion_bytes_per_sec = 25e6;
  o.delivery.regional_bytes_per_sec = 80e6;
  o.delivery.tick_seconds = 0.1;
  o.slice_bytes = 32 << 10;
  o.mint.num_groups = 1;
  o.mint.nodes_per_group = 3;
  o.mint.node_geometry.pages_per_block = 8;
  o.mint.node_geometry.num_blocks = 4096;  // 128 MiB per node.
  o.mint.engine.aof.segment_bytes = 256 << 10;
  o.gray_probe_queries = 20;
  return o;
}

class DirectLoadTest : public ::testing::Test {
 protected:
  DirectLoadTest() : dl_(SmallPipeline()) { EXPECT_TRUE(dl_.Start().ok()); }
  DirectLoad dl_;
};

TEST_F(DirectLoadTest, FirstCycleShipsFullVersionAndActivates) {
  Result<UpdateReport> report = dl_.RunUpdateCycle();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->version, 1u);
  EXPECT_EQ(report->dedup.pairs_deduped, 0u);  // Nothing to dedup yet.
  EXPECT_TRUE(report->delivery.completed);
  EXPECT_TRUE(report->gray_release_passed);
  EXPECT_LE(report->gray_inconsistency, 0.001);
  EXPECT_GT(report->pairs_ingested, 0u);
  EXPECT_GT(report->update_time_seconds, 0.0);
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    EXPECT_EQ(dl_.active_version(dc), 1u);
  }
}

TEST_F(DirectLoadTest, SecondCycleDeduplicatesUnchangedContent) {
  ASSERT_TRUE(dl_.RunUpdateCycle().ok());
  Result<UpdateReport> second = dl_.RunUpdateCycle(/*change_rate=*/0.2);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->version, 2u);
  EXPECT_GT(second->dedup.pairs_deduped, 0u);
  EXPECT_GT(second->dedup.dedup_ratio(), 0.3);
  EXPECT_TRUE(second->gray_release_passed);
}

TEST_F(DirectLoadTest, DedupShortensUpdateTime) {
  // Cycle 1 ships everything; cycle 2 at low change rate ships much less
  // and must complete faster (Figure 9's anti-correlation).
  Result<UpdateReport> first = dl_.RunUpdateCycle();
  ASSERT_TRUE(first.ok());
  Result<UpdateReport> second = dl_.RunUpdateCycle(/*change_rate=*/0.05);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->update_time_seconds, first->update_time_seconds);
}

TEST_F(DirectLoadTest, QueriesServeSearchPath) {
  ASSERT_TRUE(dl_.RunUpdateCycle().ok());
  // Pick a real document term so the query has hits.
  const webindex::Document& doc = dl_.corpus().documents()[5];
  const uint32_t term = dl_.corpus().TermsOf(doc)[0];
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    Result<DirectLoad::QueryResult> result = dl_.Query(dc, term, 3);
    ASSERT_TRUE(result.ok()) << "dc " << dc << ": "
                             << result.status().ToString();
    ASSERT_FALSE(result->urls.empty());
    ASSERT_EQ(result->urls.size(), result->abstracts.size());
    for (const std::string& abstract : result->abstracts) {
      EXPECT_FALSE(abstract.empty());
    }
  }
}

TEST_F(DirectLoadTest, VersionPruningKeepsAtMostFour) {
  for (int i = 0; i < 6; ++i) {
    Result<UpdateReport> report = dl_.RunUpdateCycle(/*change_rate=*/0.3);
    ASSERT_TRUE(report.ok()) << i << ": " << report.status().ToString();
    if (i < 4) {
      EXPECT_EQ(report->version_pruned, 0u) << i;
    } else {
      EXPECT_EQ(report->version_pruned, static_cast<uint64_t>(i - 3)) << i;
    }
  }
  // Version 1 was pruned; version 6 (current) still readable.
  mint::MintCluster* dc0 = dl_.data_center(0);
  const webindex::Document& doc = dl_.corpus().documents()[0];
  EXPECT_TRUE(dc0->Get(doc.url, 1).status().IsNotFound());
  EXPECT_TRUE(dc0->Get(doc.url, 6).ok());
}

TEST_F(DirectLoadTest, TracebackSurvivesPruningOfValueVersion) {
  // A document that never changes: versions 2..N are all deduplicated and
  // trace back to version 1's record. Pruning version 1 must not break
  // reads of live versions (the GC keeps the record as a referent).
  ASSERT_TRUE(dl_.RunUpdateCycle().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dl_.RunUpdateCycle(/*change_rate=*/0.0).ok());
  }
  const webindex::Document& doc = dl_.corpus().documents()[9];
  mint::MintCluster* dc0 = dl_.data_center(0);
  Result<mint::MintCluster::ReadResult> got = dc0->Get(doc.url, 6);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->value, dl_.corpus().AbstractOf(doc));
}

TEST_F(DirectLoadTest, RollbackRestoresPreviousVersion) {
  ASSERT_TRUE(dl_.RunUpdateCycle().ok());
  ASSERT_TRUE(dl_.RunUpdateCycle().ok());
  EXPECT_EQ(dl_.active_version(0), 2u);
  ASSERT_TRUE(dl_.Rollback().ok());
  EXPECT_EQ(dl_.active_version(0), 1u);
  // Queries now serve version 1.
  const webindex::Document& doc = dl_.corpus().documents()[3];
  const uint32_t term = dl_.corpus().TermsOf(doc)[0];
  EXPECT_TRUE(dl_.Query(0, term).ok());
}

TEST_F(DirectLoadTest, RollbackBelowOldestRejected) {
  ASSERT_TRUE(dl_.RunUpdateCycle().ok());
  EXPECT_TRUE(dl_.Rollback().IsInvalidArgument());
}

TEST_F(DirectLoadTest, VipOnlyCycleIsFasterAndHighlyDeduplicated) {
  ASSERT_TRUE(dl_.RunUpdateCycle().ok());
  Result<UpdateReport> full = dl_.RunUpdateCycle(/*change_rate=*/0.4);
  ASSERT_TRUE(full.ok());
  // A VIP-only round mutates only the VIP tier (~20% of documents), so far
  // more pairs deduplicate and the cycle completes faster — the paper's
  // higher-frequency VIP update path.
  Result<UpdateReport> vip =
      dl_.RunUpdateCycle(/*change_rate=*/0.4, /*vip_only=*/true);
  ASSERT_TRUE(vip.ok());
  EXPECT_GT(vip->dedup.dedup_ratio(), full->dedup.dedup_ratio());
  EXPECT_LT(vip->dedup.bytes_shipped, full->dedup.bytes_shipped);
  // On this fast test network both rounds may finish within one simulation
  // tick, so compare time weakly.
  EXPECT_LE(vip->update_time_seconds, full->update_time_seconds);
  EXPECT_TRUE(vip->gray_release_passed);
}

TEST(DirectLoadForwardShipTest, ForwardIndexReachesEveryDataCenter) {
  DirectLoadOptions options = SmallPipeline();
  options.ship_forward = true;
  DirectLoad dl(options);
  ASSERT_TRUE(dl.Start().ok());
  Result<UpdateReport> report = dl.RunUpdateCycle();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->gray_release_passed);
  // Every DC serves the forward index under the fwd: prefix, decodable to
  // the document's exact term list.
  const webindex::Document& doc = dl.corpus().documents()[4];
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    Result<mint::MintCluster::ReadResult> got =
        dl.data_center(dc)->Get("fwd:" + doc.url, 1);
    ASSERT_TRUE(got.ok()) << dc;
    std::vector<uint32_t> terms;
    ASSERT_TRUE(webindex::DecodeTermList(got->value, &terms).ok());
    EXPECT_EQ(terms, dl.corpus().TermsOf(doc));
  }
}

TEST(DirectLoadNoDedupTest, DisabledDedupShipsEverythingEveryCycle) {
  DirectLoadOptions options = SmallPipeline();
  options.dedup_enabled = false;
  DirectLoad dl(options);
  ASSERT_TRUE(dl.Start().ok());
  ASSERT_TRUE(dl.RunUpdateCycle().ok());
  Result<UpdateReport> second = dl.RunUpdateCycle(/*change_rate=*/0.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->dedup.pairs_deduped, 0u);
  EXPECT_DOUBLE_EQ(second->dedup.dedup_ratio(), 0.0);
}

TEST(DirectLoadContrastTest, DedupBeatsNoDedupOnUpdateTime) {
  DirectLoadOptions with = SmallPipeline();
  DirectLoadOptions without = SmallPipeline();
  without.dedup_enabled = false;
  DirectLoad dl_with(with), dl_without(without);
  ASSERT_TRUE(dl_with.Start().ok());
  ASSERT_TRUE(dl_without.Start().ok());
  ASSERT_TRUE(dl_with.RunUpdateCycle().ok());
  ASSERT_TRUE(dl_without.RunUpdateCycle().ok());
  Result<UpdateReport> r_with = dl_with.RunUpdateCycle(/*change_rate=*/0.1);
  Result<UpdateReport> r_without =
      dl_without.RunUpdateCycle(/*change_rate=*/0.1);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  EXPECT_LT(r_with->update_time_seconds, r_without->update_time_seconds);
  EXPECT_GT(r_with->throughput_kps, r_without->throughput_kps);
}

}  // namespace
}  // namespace directload::core
