// Tests for the extension features beyond the paper's minimum: QinDB range
// scans (the sorted-memtable advantage over hash-based stores), periodic
// checkpointing, and Mint replica repair.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/sim_clock.h"
#include "mint/cluster.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.pages_per_block = 8;
  g.num_blocks = 4096;
  return g;
}

class ScannerTest : public ::testing::Test {
 protected:
  ScannerTest()
      : env_(NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock_)) {
    qindb::QinDbOptions options;
    options.num_shards = 1;
    options.aof.segment_bytes = 256 << 10;
    db_ = std::move(qindb::QinDb::Open(env_.get(), options)).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
  std::unique_ptr<qindb::QinDb> db_;
};

TEST_F(ScannerTest, OrderedFullScan) {
  ASSERT_TRUE(db_->Put("c", 1, "cv").ok());
  ASSERT_TRUE(db_->Put("a", 1, "av").ok());
  ASSERT_TRUE(db_->Put("b", 1, "bv").ok());
  std::vector<std::string> keys;
  auto scan = db_->NewScanner();
  for (scan.SeekToFirst(); scan.Valid(); scan.Next()) {
    keys.push_back(scan.key().ToString());
    EXPECT_TRUE(scan.value().ok());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(ScannerTest, SeekLandsOnLowerBound) {
  for (const char* k : {"aa", "cc", "ee"}) {
    ASSERT_TRUE(db_->Put(k, 1, k).ok());
  }
  auto scan = db_->NewScanner();
  scan.Seek("bb");
  ASSERT_TRUE(scan.Valid());
  EXPECT_EQ(scan.key().ToString(), "cc");
  scan.Seek("ee");
  ASSERT_TRUE(scan.Valid());
  EXPECT_EQ(scan.key().ToString(), "ee");
  scan.Seek("zz");
  EXPECT_FALSE(scan.Valid());
}

TEST_F(ScannerTest, VersionedSnapshotSemantics) {
  ASSERT_TRUE(db_->Put("k1", 1, "k1v1").ok());
  ASSERT_TRUE(db_->Put("k1", 3, "k1v3").ok());
  ASSERT_TRUE(db_->Put("k2", 2, "k2v2").ok());
  ASSERT_TRUE(db_->Put("k3", 4, "k3v4").ok());

  // Scan at version 2: k1@1, k2@2 visible; k3 (born at 4) is not.
  auto scan = db_->NewScanner(2);
  scan.SeekToFirst();
  ASSERT_TRUE(scan.Valid());
  EXPECT_EQ(scan.key().ToString(), "k1");
  EXPECT_EQ(scan.version(), 1u);
  EXPECT_EQ(*scan.value(), "k1v1");
  scan.Next();
  ASSERT_TRUE(scan.Valid());
  EXPECT_EQ(scan.key().ToString(), "k2");
  EXPECT_EQ(*scan.value(), "k2v2");
  scan.Next();
  EXPECT_FALSE(scan.Valid());

  // Scan at the newest state sees all three, at their newest versions.
  auto newest = db_->NewScanner();
  size_t n = 0;
  for (newest.SeekToFirst(); newest.Valid(); newest.Next()) ++n;
  EXPECT_EQ(n, 3u);
}

TEST_F(ScannerTest, SkipsDeletedAndResolvesDedup) {
  ASSERT_TRUE(db_->Put("gone", 1, "x").ok());
  ASSERT_TRUE(db_->Del("gone", 1).ok());
  ASSERT_TRUE(db_->Put("dd", 1, "original").ok());
  ASSERT_TRUE(db_->Put("dd", 2, Slice(), /*dedup=*/true).ok());

  auto scan = db_->NewScanner();
  scan.SeekToFirst();
  ASSERT_TRUE(scan.Valid());
  EXPECT_EQ(scan.key().ToString(), "dd");
  EXPECT_EQ(scan.version(), 2u);                 // Newest version wins.
  EXPECT_EQ(*scan.value(), "original");          // Resolved by traceback.
  scan.Next();
  EXPECT_FALSE(scan.Valid());  // "gone" is deleted at its newest version.
}

TEST_F(ScannerTest, MatchesModelOnRandomData) {
  Random rnd(50);
  std::map<std::string, std::string> model;  // newest live value per key.
  for (int i = 0; i < 300; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(60));
    const uint64_t version = 1 + rnd.Uniform(4);
    const std::string value = rnd.NextString(200);
    ASSERT_TRUE(db_->Put(key, version, value).ok());
  }
  // Build the model from exact engine semantics: newest version per key.
  model.clear();
  for (int k = 0; k < 60; ++k) {
    const std::string key = "key" + std::to_string(k);
    Result<std::string> got = db_->GetLatest(key);
    if (got.ok()) model[key] = *got;
  }
  auto scan = db_->NewScanner();
  auto expected = model.begin();
  for (scan.SeekToFirst(); scan.Valid(); scan.Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(scan.key().ToString(), expected->first);
    EXPECT_EQ(*scan.value(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
}

// ---------------------------------------------------------------------------
// Periodic checkpointing
// ---------------------------------------------------------------------------

TEST(PeriodicCheckpointTest, CheckpointsAppearAtConfiguredInterval) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 256 << 10;
  options.checkpoint_interval_bytes = 64 << 10;
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  Random rnd(8);
  EXPECT_FALSE(env->FileExists("checkpoint.dat"));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        db->Put("k" + std::to_string(i), 1, rnd.NextString(2000)).ok());
  }
  // 80 KB ingested > 64 KB interval: a checkpoint must exist.
  EXPECT_TRUE(env->FileExists("checkpoint.dat"));

  // Recovery uses it: reads only the checkpoint + post-checkpoint suffix.
  db.reset();
  const uint64_t before = env->stats().host_pages_read;
  auto reopened = std::move(qindb::QinDb::Open(env.get(), options)).value();
  const uint64_t recovery_reads = env->stats().host_pages_read - before;
  EXPECT_LT(recovery_reads, 40u);  // Far less than the ~20 full data pages x40.
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(reopened->Get("k" + std::to_string(i), 1).ok()) << i;
  }
}

// ---------------------------------------------------------------------------
// Mint repair
// ---------------------------------------------------------------------------

mint::MintOptions RepairClusterOptions() {
  mint::MintOptions o;
  o.num_groups = 1;
  o.nodes_per_group = 3;
  o.node_geometry = SmallGeometry();
  o.engine.aof.segment_bytes = 256 << 10;
  return o;
}

TEST(MintRepairTest, ReplacedNodeIsRefilledFromPeers) {
  mint::MintCluster cluster(RepairClusterOptions());
  ASSERT_TRUE(cluster.Start().ok());
  Random rnd(9);
  std::map<std::string, std::string> data;
  for (int i = 0; i < 80; ++i) {
    const std::string key = "url:" + std::to_string(i);
    const std::string value = rnd.NextString(1000);
    ASSERT_TRUE(cluster.Put(key, 1, value).ok());
    data[key] = value;
  }
  // Node 0's SSD is destroyed and replaced with a blank one: simulate by
  // failing it and wiping via a fresh env — here we approximate with
  // fail + recover (AOFs intact), then measure repair is a no-op…
  ASSERT_TRUE(cluster.FailNode(0).ok());
  ASSERT_TRUE(cluster.RecoverNode(0).ok());
  Result<uint64_t> copied = cluster.RepairNode(0);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 0u);  // Nothing missing after an AOF recovery.

  // …then create real divergence: new writes while the node is down.
  ASSERT_TRUE(cluster.FailNode(0).ok());
  for (int i = 100; i < 160; ++i) {
    const std::string key = "url:" + std::to_string(i);
    const std::string value = rnd.NextString(1000);
    ASSERT_TRUE(cluster.Put(key, 1, value).ok());
    data[key] = value;
  }
  ASSERT_TRUE(cluster.RecoverNode(0).ok());
  copied = cluster.RepairNode(0);
  ASSERT_TRUE(copied.ok());
  EXPECT_GT(*copied, 0u);

  // The node now holds everything it is a replica for.
  for (const auto& [key, value] : data) {
    const std::vector<int> replicas = cluster.ReplicasOf(key);
    if (std::find(replicas.begin(), replicas.end(), 0) == replicas.end()) {
      continue;
    }
    Result<std::string> got = cluster.node(0)->db()->Get(key, 1);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
}

TEST(MintRepairTest, RepairResolvesDedupChains) {
  mint::MintCluster cluster(RepairClusterOptions());
  ASSERT_TRUE(cluster.Start().ok());
  // Write a value + a dedup version, then diverge a node and repair.
  ASSERT_TRUE(cluster.FailNode(1).ok());
  ASSERT_TRUE(cluster.Put("k", 1, "base-value").ok());
  ASSERT_TRUE(cluster.Put("k", 2, Slice(), /*dedup=*/true).ok());
  ASSERT_TRUE(cluster.RecoverNode(1).ok());
  Result<uint64_t> copied = cluster.RepairNode(1);
  ASSERT_TRUE(copied.ok());
  const std::vector<int> replicas = cluster.ReplicasOf("k");
  if (std::find(replicas.begin(), replicas.end(), 1) != replicas.end()) {
    EXPECT_EQ(*copied, 2u);
    // Both versions resolve on the repaired node alone.
    EXPECT_EQ(*cluster.node(1)->db()->Get("k", 1), "base-value");
    EXPECT_EQ(*cluster.node(1)->db()->Get("k", 2), "base-value");
  } else {
    EXPECT_EQ(*copied, 0u);
  }
}

TEST(MintRepairTest, RepairDownNodeRejected) {
  mint::MintCluster cluster(RepairClusterOptions());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.FailNode(2).ok());
  EXPECT_TRUE(cluster.RepairNode(2).status().IsUnavailable());
  EXPECT_TRUE(cluster.RepairNode(99).status().IsInvalidArgument());
}

}  // namespace
}  // namespace directload
