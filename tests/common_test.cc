#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/rate_limiter.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace directload {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("key x");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key x");

  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::NoSpace().IsNoSpace());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Deduplicated().IsDeduplicated());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Protocol().IsProtocol());
}

TEST(StatusTest, ProtocolDistinctFromCorruption) {
  // A malformed frame (kProtocol: the peer speaks the wrong language) is a
  // different failure from a damaged frame (kCorruption: checksum mismatch);
  // the RPC layer relies on the distinction.
  Status protocol = Status::Protocol("bad magic");
  EXPECT_EQ(protocol.code(), StatusCode::kProtocol);
  EXPECT_EQ(protocol.ToString(), "Protocol: bad magic");
  EXPECT_FALSE(protocol.IsCorruption());
  EXPECT_FALSE(Status::Corruption().IsProtocol());
  EXPECT_FALSE(protocol == Status::Corruption());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Corruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------------
// Slice
// ---------------------------------------------------------------------------

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("hello!"));
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Comparison) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(SliceTest, EmbeddedNuls) {
  const std::string a("a\0b", 3);
  const std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, FixedRoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeefu);
  PutFixed64(&s, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed64(s.data() + 4), 0x0123456789abcdefull);
}

TEST(CodingTest, Varint64RoundTripBoundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (1ull << 32) - 1, 1ull << 32, UINT64_MAX};
  std::string s;
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice in(s);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string s;
  PutVarint64(&s, static_cast<uint64_t>(UINT32_MAX) + 1);
  Slice in(s);
  uint32_t got = 0;
  EXPECT_FALSE(GetVarint32(&in, &got));
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint64(&s, UINT64_MAX);
  for (size_t cut = 0; cut < s.size(); ++cut) {
    Slice in(s.data(), cut);
    uint64_t got = 0;
    EXPECT_FALSE(GetVarint64(&in, &got)) << "cut=" << cut;
  }
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, "key");
  PutLengthPrefixedSlice(&s, "");
  PutLengthPrefixedSlice(&s, std::string(300, 'x'));
  Slice in(s);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "key");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 60, UINT64_MAX}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, StandardVector) {
  // The canonical CRC-32C check value for "123456789".
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ZerosVector) {
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello world, this is directload";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  const uint32_t part = crc32c::Extend(crc32c::Value(data.data(), 10),
                                       data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, DispatchedMatchesPortableAtEveryLengthAndOffset) {
  // The dispatched Extend may run the SSE4.2 instruction; the portable
  // slicing-by-8 path must compute the identical function across lengths
  // (tail handling) and alignments (head handling).
  Random rnd(77);
  const std::string data = rnd.NextString(256);
  for (size_t off = 0; off < 9; ++off) {
    for (size_t len = 0; off + len <= 128; ++len) {
      ASSERT_EQ(crc32c::Extend(0x1234u, data.data() + off, len),
                crc32c::ExtendPortableForTesting(0x1234u, data.data() + off,
                                                 len))
          << "off=" << off << " len=" << len;
    }
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  const uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, DeterministicAndSeeded) {
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
  EXPECT_NE(Hash64("abc", 3), Hash64("abd", 3));
  EXPECT_NE(Hash64("abc", 3, 1), Hash64("abc", 3, 2));
}

TEST(HashTest, SignatureDetectsValueChange) {
  EXPECT_EQ(ValueSignature("same content"), ValueSignature("same content"));
  EXPECT_NE(ValueSignature("same content"), ValueSignature("same c0ntent"));
}

TEST(HashTest, Hash32Spreads) {
  // Simple avalanche sanity: single-byte difference flips the hash.
  EXPECT_NE(Hash32("aaaa", 4), Hash32("aaab", 4));
}

// ---------------------------------------------------------------------------
// Random / Zipfian
// ---------------------------------------------------------------------------

TEST(RandomTest, DeterministicPerSeed) {
  Random a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Random a2(7), c2(8);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    const uint64_t v = r.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRate) {
  Random r(1);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, ExponentialMean) {
  Random r(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.Exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.25);
}

TEST(RandomTest, NextStringLengthAndAlphabet) {
  Random r(3);
  const std::string s = r.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char ch : s) {
    EXPECT_GE(ch, 'a');
    EXPECT_LE(ch, 'z');
  }
}

TEST(ZipfianTest, SkewTowardLowRanks) {
  ZipfianGenerator zipf(1000, 0.99, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  // Rank 0 must dominate the median rank by a wide margin.
  EXPECT_GT(counts[0], 1000);
  int tail = 0;
  for (const auto& [rank, n] : counts) {
    EXPECT_LT(rank, 1000u);
    if (rank > 500) tail += n;
  }
  EXPECT_LT(tail, 2000);
}

// ---------------------------------------------------------------------------
// Histogram / RunningStat
// ---------------------------------------------------------------------------

TEST(HistogramTest, MeanAndPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  EXPECT_NEAR(h.Percentile(50), 500, 60);
  EXPECT_NEAR(h.Percentile(99), 990, 60);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.min(), 1);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.Mean(), 505, 1);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(RunningStatTest, WelfordMatchesClosedForm) {
  RunningStat rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_NEAR(rs.Mean(), 5.0, 1e-9);
  EXPECT_NEAR(rs.Variance(), 32.0 / 7.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Arena / SimClock
// ---------------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreUsableAndAligned) {
  Arena arena;
  char* a = arena.Allocate(13);
  std::memset(a, 1, 13);
  char* b = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(void*), 0u);
  std::memset(b, 2, 64);
  // Large allocation exceeding the block size gets its own block.
  char* c = arena.Allocate(100000);
  std::memset(c, 3, 100000);
  EXPECT_GE(arena.MemoryUsage(), 100000u);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 2);
  EXPECT_EQ(c[99999], 3);
}

TEST(RateLimiterTest, BurstThenPaced) {
  SimClock clock;
  RateLimiter limiter(&clock, /*rate_per_sec=*/1000.0, /*burst=*/500.0);
  // The burst admits immediately.
  EXPECT_EQ(limiter.Acquire(500.0), 0u);
  // The next 1000 units are admissible one second later.
  const uint64_t admit = limiter.Acquire(1000.0);
  EXPECT_EQ(admit, 1000000u);
  // Advancing past the admit time refills the bucket.
  clock.AdvanceTo(admit);
  EXPECT_NEAR(limiter.available(), 0.0, 1e-6);
  clock.AdvanceMicros(250000);  // +0.25s => +250 tokens.
  EXPECT_NEAR(limiter.available(), 250.0, 1e-6);
}

TEST(RateLimiterTest, TokensCapAtBurst) {
  SimClock clock;
  RateLimiter limiter(&clock, 100.0, 50.0);
  clock.AdvanceMicros(10 * 1000000);  // 10s idle: would be 1000 tokens.
  EXPECT_NEAR(limiter.available(), 50.0, 1e-6);
}

TEST(WallRateLimiterTest, BurstAdmitsImmediately) {
  // Slow refill (1 token/s) so the bucket stays near empty for the duration
  // of the test no matter how slowly it runs.
  WallRateLimiter limiter(/*rate_per_sec=*/1.0, /*burst=*/500.0);
  // The initial burst is admissible now (or in the past).
  const auto admit = limiter.Acquire(500.0);
  EXPECT_LE(admit, WallRateLimiter::Clock::now());
  EXPECT_LE(limiter.available(), 1.0);
}

TEST(WallRateLimiterTest, DeficitSchedulesRefill) {
  WallRateLimiter limiter(/*rate_per_sec=*/1000.0, /*burst=*/100.0);
  const auto before = WallRateLimiter::Clock::now();
  // 1100 units against a 100-unit bucket leaves a 1000-unit deficit: the
  // request is admissible ~1s out. Bounds are loose (the clock ticks while
  // the test runs) but a refill must be scheduled, not immediate.
  const auto admit = limiter.Acquire(1100.0);
  const auto wait =
      std::chrono::duration<double>(admit - before).count();
  EXPECT_GT(wait, 0.5);
  EXPECT_LT(wait, 2.0);
  EXPECT_LT(limiter.available(), 0.0);  // Still in deficit right now.
}

TEST(WallRateLimiterTest, TokensCapAtBurst) {
  WallRateLimiter limiter(/*rate_per_sec=*/1e9, /*burst=*/50.0);
  // Even at a huge refill rate the bucket never exceeds its burst.
  EXPECT_LE(limiter.available(), 50.0);
  limiter.Acquire(10.0);
  EXPECT_LE(limiter.available(), 50.0);
}

TEST(WallRateLimiterTest, ZeroRateDisablesThrottling) {
  WallRateLimiter limiter(/*rate_per_sec=*/0.0, /*burst=*/1.0);
  // Unlimited: any amount is admissible immediately, forever, and no debt
  // accumulates across calls.
  for (int i = 0; i < 3; ++i) {
    const auto admit = limiter.Acquire(1e12);
    EXPECT_LE(admit, WallRateLimiter::Clock::now());
    EXPECT_DOUBLE_EQ(limiter.available(), 1.0);
  }
  limiter.Throttle(1e12);  // Must return without sleeping.
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.NowMicros(), 250u);
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.NowMicros(), 1000u);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1e-3);
  clock.Reset();
  EXPECT_EQ(clock.NowMicros(), 0u);
}

}  // namespace
}  // namespace directload
