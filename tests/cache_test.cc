// Read-path memory governors: the AOF block cache (striped segmented-LRU
// with TinyLFU admission) and the lazy version-index registry. Unit tests
// drive BlockCache directly; the engine battery proves the staleness
// story — every path that kills or moves a record must evict or re-key its
// cached bytes, and a cold version must materialize back byte-for-byte —
// plus budget enforcement and survival across GC, checkpoint, and reopen.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "qindb/block_cache.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 2048;  // 64 MiB device.
  return g;
}

std::string KeyOf(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key-%06d", i);
  return buf;
}

// ---------------------------------------------------------------------------
// BlockCache unit tests
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, InsertThenLookupHits) {
  BlockCache cache(64 << 10, 0);
  cache.Insert(100, "alpha", 7, "value-bytes");
  std::string out;
  ASSERT_TRUE(cache.Lookup(100, "alpha", 7, &out));
  EXPECT_EQ(out, "value-bytes");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.Lookup(101, "alpha", 7, &out));
}

TEST(BlockCacheTest, IdentityMismatchNeverServesAndDropsEntry) {
  BlockCache cache(64 << 10, 0);
  cache.Insert(100, "alpha", 7, "value-bytes");
  std::string out;
  // Same address, wrong version: a missed invalidation site. The cache
  // must refuse and self-heal by dropping the entry.
  EXPECT_FALSE(cache.Lookup(100, "alpha", 8, &out));
  EXPECT_FALSE(cache.Lookup(100, "alpha", 7, &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(BlockCacheTest, EraseRemovesEntry) {
  BlockCache cache(64 << 10, 0);
  cache.Insert(100, "alpha", 7, "value-bytes");
  cache.Erase(100);
  std::string out;
  EXPECT_FALSE(cache.Lookup(100, "alpha", 7, &out));
  EXPECT_EQ(cache.stats().charged_bytes, 0u);
}

TEST(BlockCacheTest, RekeyFollowsRelocation) {
  BlockCache cache(64 << 10, 0);
  // Exercise both same-stripe and cross-stripe moves: addresses hash to
  // stripes via a mixer, so a spread of values covers both paths.
  for (uint64_t addr = 1; addr <= 32; ++addr) {
    const std::string key = "k" + std::to_string(addr);
    cache.Insert(addr, key, 3, "v" + std::to_string(addr));
    cache.Rekey(addr, addr + 1000);
    std::string out;
    EXPECT_FALSE(cache.Lookup(addr, key, 3, &out)) << addr;
    ASSERT_TRUE(cache.Lookup(addr + 1000, key, 3, &out)) << addr;
    EXPECT_EQ(out, "v" + std::to_string(addr));
  }
}

TEST(BlockCacheTest, BudgetIsNeverExceeded) {
  constexpr uint64_t kBudget = 16 << 10;
  BlockCache cache(kBudget, 0);
  const std::string value(512, 'x');
  for (uint64_t i = 0; i < 1000; ++i) {
    cache.Insert(i, KeyOf(static_cast<int>(i)), 1, value);
    ASSERT_LE(cache.stats().charged_bytes, kBudget) << "at insert " << i;
  }
  const BlockCache::Stats s = cache.stats();
  EXPECT_GT(s.entries, 0u);
  // A one-touch stream must not admit everything: TinyLFU rejects
  // newcomers that cannot beat a victim's frequency.
  EXPECT_GT(s.admission_rejects + s.evicted_bytes, 0u);
}

TEST(BlockCacheTest, HotEntriesSurviveOneTouchScan) {
  constexpr uint64_t kBudget = 16 << 10;
  BlockCache cache(kBudget, 0);
  const std::string value(256, 'h');
  // Build a hot set and touch it repeatedly so the sketch learns it.
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(i, KeyOf(static_cast<int>(i)), 1, value);
  }
  std::string out;
  for (int round = 0; round < 16; ++round) {
    for (uint64_t i = 0; i < 8; ++i) {
      cache.Lookup(i, KeyOf(static_cast<int>(i)), 1, &out);
    }
  }
  // One-touch scan of a much larger cold set.
  for (uint64_t i = 1000; i < 2000; ++i) {
    cache.Insert(i, KeyOf(static_cast<int>(i)), 1, value);
  }
  int survivors = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (cache.Lookup(i, KeyOf(static_cast<int>(i)), 1, &out)) ++survivors;
  }
  EXPECT_GE(survivors, 6) << "scan washed out the hot set";
}

TEST(BlockCacheTest, OversizedEntryRejected) {
  BlockCache cache(4 << 10, 0);  // 1 KiB per stripe.
  const std::string huge(8 << 10, 'g');
  cache.Insert(42, "big", 1, huge);
  std::string out;
  EXPECT_FALSE(cache.Lookup(42, "big", 1, &out));
  EXPECT_GT(cache.stats().admission_rejects, 0u);
}

// ---------------------------------------------------------------------------
// Engine battery
// ---------------------------------------------------------------------------

class CacheEngineTest : public ::testing::Test {
 protected:
  CacheEngineTest() { ResetEnv(); }

  void ResetEnv() {
    clock_.Reset();
    env_ = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                     ssd::LatencyModel(), &clock_);
  }

  std::unique_ptr<QinDb> OpenDb(QinDbOptions options) {
    options.num_shards = 1;  // Undivided budgets, deterministic routing.
    if (options.aof.segment_bytes == 64ull << 20) {
      options.aof.segment_bytes = 32 << 10;  // Small segments: GC has teeth.
    }
    auto db = QinDb::Open(env_.get(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

TEST_F(CacheEngineTest, RepeatReadsHitTheCache) {
  QinDbOptions options;
  options.cache_bytes = 1 << 20;
  auto db = OpenDb(options);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "v" + KeyOf(i)).ok());
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      Result<std::string> got = db->Get(KeyOf(i), 1);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, "v" + KeyOf(i));
    }
  }
  const EngineCacheTotals totals = db->CacheTotals();
  EXPECT_GT(totals.cache_inserts, 0u);
  // Rounds 2 and 3 must be served from memory.
  EXPECT_GE(totals.cache_hits, 100u);
  EXPECT_LE(totals.cache_charged_bytes, options.cache_bytes);
}

TEST_F(CacheEngineTest, SupersedingPutEvictsStaleBytes) {
  QinDbOptions options;
  options.cache_bytes = 1 << 20;
  auto db = OpenDb(options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "old-" + KeyOf(i)).ok());
    ASSERT_TRUE(db->Get(KeyOf(i), 1).ok());  // Warm the cache.
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "new-" + KeyOf(i)).ok());
    Result<std::string> got = db->Get(KeyOf(i), 1);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, "new-" + KeyOf(i)) << "stale cached value served";
  }
}

TEST_F(CacheEngineTest, GcRelocationNeverServesStaleBytes) {
  QinDbOptions options;
  options.cache_bytes = 1 << 20;
  options.auto_gc = false;
  auto db = OpenDb(options);
  // Interleave survivors with garbage so GC must relocate live records.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "keep-" + KeyOf(i)).ok());
    ASSERT_TRUE(db->Put("junk-" + KeyOf(i), 2, std::string(400, 'j')).ok());
  }
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(db->Get(KeyOf(i), 1).ok());
  ASSERT_TRUE(db->DropVersion(2).ok());
  ASSERT_TRUE(db->ForceGc().ok());
  for (int i = 0; i < 60; ++i) {
    Result<std::string> got = db->Get(KeyOf(i), 1);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, "keep-" + KeyOf(i));
  }
  Result<QinDb::ScrubReport> report = db->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
}

TEST_F(CacheEngineTest, DelAndDropVersionLeaveNoGhostHits) {
  QinDbOptions options;
  options.cache_bytes = 1 << 20;
  options.aof.log_deletes = true;  // Deletions must survive the reopen.
  auto db = OpenDb(options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "v1-" + KeyOf(i)).ok());
    ASSERT_TRUE(db->Put(KeyOf(i), 2, "v2-" + KeyOf(i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Get(KeyOf(i), 1).ok());
    ASSERT_TRUE(db->Get(KeyOf(i), 2).ok());
  }
  ASSERT_TRUE(db->Del(KeyOf(0), 1).ok());
  EXPECT_TRUE(db->Get(KeyOf(0), 1).status().IsNotFound());
  ASSERT_TRUE(db->DropVersion(2).ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(db->Get(KeyOf(i), 2).status().IsNotFound()) << i;
  }
  // Reopen: the dropped version must stay gone, the survivors intact.
  db.reset();
  auto db2 = OpenDb(options);
  EXPECT_TRUE(db2->Get(KeyOf(1), 2).status().IsNotFound());
  Result<std::string> got = db2->Get(KeyOf(1), 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "v1-" + KeyOf(1));
}

TEST_F(CacheEngineTest, IngestAbortLeavesNoCachedTrace) {
  QinDbOptions options;
  options.cache_bytes = 1 << 20;
  auto db = OpenDb(options);
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("bulk:" + KeyOf(i));
  std::vector<IngestOp> ops(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ops[i].key = keys[i];
    ops[i].version = 9;
    ops[i].value = "aborted";
  }
  ASSERT_TRUE(db->IngestBegin(9).ok());
  ASSERT_TRUE(db->IngestRun(9, ops.data(), ops.size()).ok());
  ASSERT_TRUE(db->IngestAbort(9).ok());
  for (const std::string& key : keys) {
    EXPECT_TRUE(db->Get(key, 9).status().IsNotFound());
  }
  // The version's number is reusable; the new load must win everywhere.
  for (size_t i = 0; i < keys.size(); ++i) ops[i].value = "landed";
  ASSERT_TRUE(db->IngestBegin(9).ok());
  ASSERT_TRUE(db->IngestRun(9, ops.data(), ops.size()).ok());
  ASSERT_TRUE(db->IngestCommit(9).ok());
  for (const std::string& key : keys) {
    Result<std::string> got = db->Get(key, 9);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, "landed");
  }
}

// ---------------------------------------------------------------------------
// Lazy version indexes
// ---------------------------------------------------------------------------

class LazyIndexTest : public CacheEngineTest {
 protected:
  // Tight index budget: a handful of versions with a few hundred pairs
  // overflow it, forcing unloads at write boundaries.
  static QinDbOptions TightOptions() {
    QinDbOptions options;
    options.index_memory_bytes = 24 << 10;
    return options;
  }

  static void FillVersions(QinDb* db, int versions, int keys) {
    for (int v = 1; v <= versions; ++v) {
      for (int i = 0; i < keys; ++i) {
        ASSERT_TRUE(
            db->Put(KeyOf(i), static_cast<uint64_t>(v),
                    "v" + std::to_string(v) + "-" + KeyOf(i))
                .ok());
      }
    }
  }
};

TEST_F(LazyIndexTest, ColdVersionsUnloadAndMaterializeOnAccess) {
  auto db = OpenDb(TightOptions());
  FillVersions(db.get(), 6, 100);
  EngineCacheTotals totals = db->CacheTotals();
  ASSERT_GT(totals.index_unloads, 0u) << "budget overflow never unloaded";
  ASSERT_GT(totals.cold_versions, 0u);
  // Every pair of every version — cold included — must read back exactly.
  for (int v = 1; v <= 6; ++v) {
    for (int i = 0; i < 100; ++i) {
      Result<std::string> got = db->Get(KeyOf(i), v);
      ASSERT_TRUE(got.ok()) << "v" << v << " " << got.status().ToString();
      EXPECT_EQ(*got, "v" + std::to_string(v) + "-" + KeyOf(i));
    }
  }
  totals = db->CacheTotals();
  EXPECT_GT(totals.index_loads, 0u) << "reads never materialized";
}

TEST_F(LazyIndexTest, VersionCountsSeeColdVersions) {
  auto db = OpenDb(TightOptions());
  FillVersions(db.get(), 6, 100);
  ASSERT_GT(db->CacheTotals().cold_versions, 0u);
  const std::map<uint64_t, uint64_t> counts = db->VersionCounts();
  for (int v = 1; v <= 6; ++v) {
    auto it = counts.find(static_cast<uint64_t>(v));
    ASSERT_NE(it, counts.end()) << "version " << v << " missing";
    EXPECT_EQ(it->second, 100u) << "version " << v;
  }
}

TEST_F(LazyIndexTest, GetLatestSpansColdVersions) {
  auto db = OpenDb(TightOptions());
  FillVersions(db.get(), 6, 100);
  ASSERT_GT(db->CacheTotals().cold_versions, 0u);
  for (int i = 0; i < 100; ++i) {
    Result<std::string> got = db->GetLatest(KeyOf(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, "v6-" + KeyOf(i));
  }
}

TEST_F(LazyIndexTest, ScannerSeesEveryVersion) {
  auto db = OpenDb(TightOptions());
  FillVersions(db.get(), 6, 100);
  ASSERT_GT(db->CacheTotals().cold_versions, 0u);
  int rows = 0;
  QinDb::Scanner scanner = db->NewScanner(3);
  for (scanner.SeekToFirst(); scanner.Valid(); scanner.Next()) {
    Result<std::string> value = scanner.value();
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(*value, "v3-" + scanner.key().ToString());
    ++rows;
  }
  EXPECT_EQ(rows, 100);
}

TEST_F(LazyIndexTest, ColdVersionSurvivesGcRelocation) {
  QinDbOptions options = TightOptions();
  options.auto_gc = false;
  auto db = OpenDb(options);
  FillVersions(db.get(), 6, 100);
  // Garbage in a throwaway version pushes GC into relocating survivors —
  // including cold versions' records, which classify must keep and
  // relocate must re-key in the registry.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db->Put("junk-" + KeyOf(i), 99, std::string(400, 'j')).ok());
  }
  ASSERT_TRUE(db->DropVersion(99).ok());
  ASSERT_GT(db->CacheTotals().cold_versions, 0u);
  ASSERT_TRUE(db->ForceGc().ok());
  for (int v = 1; v <= 6; ++v) {
    for (int i = 0; i < 100; ++i) {
      Result<std::string> got = db->Get(KeyOf(i), v);
      ASSERT_TRUE(got.ok())
          << "v" << v << " " << KeyOf(i) << ": " << got.status().ToString();
      EXPECT_EQ(*got, "v" + std::to_string(v) + "-" + KeyOf(i));
    }
  }
}

TEST_F(LazyIndexTest, ReopenRecoversColdVersions) {
  auto db = OpenDb(TightOptions());
  FillVersions(db.get(), 6, 100);
  ASSERT_GT(db->CacheTotals().cold_versions, 0u);
  db.reset();
  // Recovery replays the whole log; unloaded state must leave no holes.
  auto db2 = OpenDb(TightOptions());
  for (int v = 1; v <= 6; ++v) {
    for (int i = 0; i < 100; ++i) {
      Result<std::string> got = db2->Get(KeyOf(i), v);
      ASSERT_TRUE(got.ok()) << "v" << v << ": " << got.status().ToString();
      EXPECT_EQ(*got, "v" + std::to_string(v) + "-" + KeyOf(i));
    }
  }
}

TEST_F(LazyIndexTest, CheckpointMaterializesColdVersionsFirst) {
  auto db = OpenDb(TightOptions());
  FillVersions(db.get(), 6, 100);
  ASSERT_GT(db->CacheTotals().cold_versions, 0u);
  // A checkpoint only covers what is in the index; cold versions must be
  // pulled back in before the snapshot or the reopen loses them.
  ASSERT_TRUE(db->Checkpoint().ok());
  db.reset();
  auto db2 = OpenDb(TightOptions());
  for (int v = 1; v <= 6; ++v) {
    for (int i = 0; i < 100; ++i) {
      Result<std::string> got = db2->Get(KeyOf(i), v);
      ASSERT_TRUE(got.ok()) << "v" << v << ": " << got.status().ToString();
      EXPECT_EQ(*got, "v" + std::to_string(v) + "-" + KeyOf(i));
    }
  }
}

TEST_F(LazyIndexTest, DeletePullsVersionResidentAndPinsIt) {
  auto db = OpenDb(TightOptions());
  FillVersions(db.get(), 6, 100);
  ASSERT_GT(db->CacheTotals().cold_versions, 0u);
  // Deleting inside a (possibly cold) version materializes it, and a
  // version holding deleted pairs may never unload again.
  ASSERT_TRUE(db->Del(KeyOf(7), 2).ok());
  EXPECT_TRUE(db->Get(KeyOf(7), 2).status().IsNotFound());
  Result<std::string> neighbor = db->Get(KeyOf(8), 2);
  ASSERT_TRUE(neighbor.ok()) << neighbor.status().ToString();
  EXPECT_EQ(*neighbor, "v2-" + KeyOf(8));
}

// Version churn under concurrent readers: writers add versions and drop
// old ones while readers hammer point and latest lookups. Run under TSan
// this is the race battery for unload/materialize vs the lock-free read
// path; under any build it asserts no stale or phantom value is ever
// served.
TEST_F(LazyIndexTest, VersionChurnUnderConcurrentReaders) {
  QinDbOptions options = TightOptions();
  options.cache_bytes = 256 << 10;
  auto db = OpenDb(options);
  constexpr int kKeys = 40;
  constexpr uint64_t kVersions = 12;
  std::atomic<uint64_t> published{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (uint64_t v = 1; v <= kVersions; ++v) {
      for (int i = 0; i < kKeys; ++i) {
        ASSERT_TRUE(
            db->Put(KeyOf(i), v, "v" + std::to_string(v) + "-" + KeyOf(i))
                .ok());
      }
      published.store(v, std::memory_order_release);
      if (v > 4) {
        // Drop the oldest surviving version (possibly cold).
        ASSERT_TRUE(db->DropVersion(v - 4).ok());
      }
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b9u + t;
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t high = published.load(std::memory_order_acquire);
        if (high == 0) continue;
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int key = static_cast<int>((rng >> 33) % kKeys);
        if (rng & 1) {
          // A fully published version may since have been dropped —
          // NotFound is legal; a wrong value never is.
          const uint64_t v = 1 + ((rng >> 17) % high);
          Result<std::string> got = db->Get(KeyOf(key), v);
          if (got.ok()) {
            ASSERT_EQ(*got, "v" + std::to_string(v) + "-" + KeyOf(key));
          }
        } else {
          Result<std::string> got = db->GetLatest(KeyOf(key));
          if (got.ok()) {
            // Latest is some fully- or partially-published version.
            const std::string& value = *got;
            ASSERT_EQ(value.rfind("v", 0), 0u);
            ASSERT_NE(value.find("-" + KeyOf(key)), std::string::npos);
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  for (int i = 0; i < kKeys; ++i) {
    Result<std::string> got = db->Get(KeyOf(i), kVersions);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(kVersions) + "-" + KeyOf(i));
  }
}

}  // namespace
}  // namespace directload::qindb
