// Bifrost-over-the-wire bulk loading, bottom to top: the slice codec's
// framing and hostile-input discipline, the engine's staged ingest sessions
// (invisible until commit, abort/crash leaves no trace, idempotent
// cross-shard commit), and the full socket path — BulkLoader streaming a
// version into a live KvServer, including the checksum-NACK repair loop and
// the commit-time missing-slice repair contract, plus the negotiated bulk
// frame bound.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bifrost/dedup.h"
#include "bifrost/wire/bulk_loader.h"
#include "bifrost/wire/slice_codec.h"
#include "common/coding.h"
#include "common/failpoint.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"
#include "server/kv_server.h"
#include "ssd/env.h"

namespace directload {
namespace {

using bifrost::ShippedPair;
using bifrost::wire::AppendWirePair;
using bifrost::wire::BulkBeginInfo;
using bifrost::wire::BulkDelete;
using bifrost::wire::BulkLoader;
using bifrost::wire::BulkLoadOptions;
using bifrost::wire::BulkLoadReport;
using bifrost::wire::CheckSliceFrame;
using bifrost::wire::DecodeBulkBegin;
using bifrost::wire::DecodeBulkCommit;
using bifrost::wire::DecodeMissingSlices;
using bifrost::wire::DecodeSlicePacket;
using bifrost::wire::EncodeBulkBegin;
using bifrost::wire::EncodeBulkCommit;
using bifrost::wire::EncodeMissingSlices;
using bifrost::wire::EncodeSlicePacket;
using bifrost::wire::PairView;
using bifrost::wire::SliceHeader;

// ---------------------------------------------------------------------------
// Slice codec
// ---------------------------------------------------------------------------

std::string MakeSlice(uint64_t slice_id, uint64_t version,
                      webindex::IndexType type, uint32_t pair_count,
                      const std::string& payload) {
  SliceHeader header;
  header.slice_id = slice_id;
  header.version = version;
  header.type = type;
  header.pair_count = pair_count;
  std::string frame;
  EncodeSlicePacket(header, payload, &frame);
  return frame;
}

TEST(SliceCodecTest, PairPayloadRoundTrip) {
  std::string payload;
  AppendWirePair(&payload, "url:a", 7, "value-a", false, false);
  AppendWirePair(&payload, "url:b", 7, "ignored", /*dedup=*/true, false);
  AppendWirePair(&payload, "url:c", 3, "ignored", false, /*tombstone=*/true);
  const std::string frame =
      MakeSlice(12, 7, webindex::IndexType::kSummary, 3, payload);

  SliceHeader header;
  std::vector<PairView> pairs;
  ASSERT_TRUE(DecodeSlicePacket(frame, &header, &pairs).ok());
  EXPECT_EQ(header.slice_id, 12u);
  EXPECT_EQ(header.version, 7u);
  EXPECT_EQ(header.type, webindex::IndexType::kSummary);
  ASSERT_EQ(pairs.size(), 3u);

  EXPECT_EQ(pairs[0].key.ToString(), "url:a");
  EXPECT_EQ(pairs[0].value.ToString(), "value-a");
  EXPECT_EQ(pairs[0].version, 7u);
  EXPECT_FALSE(pairs[0].dedup);
  EXPECT_FALSE(pairs[0].tombstone);

  // Dedup and tombstone pairs ship value-less no matter what was passed.
  EXPECT_TRUE(pairs[1].dedup);
  EXPECT_TRUE(pairs[1].value.empty());
  EXPECT_TRUE(pairs[2].tombstone);
  EXPECT_TRUE(pairs[2].value.empty());
  EXPECT_EQ(pairs[2].version, 3u);
}

TEST(SliceCodecTest, AnyFlippedByteFailsTheChecksum) {
  std::string payload;
  AppendWirePair(&payload, "k", 1, "v", false, false);
  const std::string frame =
      MakeSlice(0, 1, webindex::IndexType::kInverted, 1, payload);
  // Header, payload, and trailer bytes all count.
  for (size_t at : {size_t{0}, size_t{9}, size_t{17},
                    bifrost::wire::kSliceHeaderBytes + 1, frame.size() - 1}) {
    std::string damaged = frame;
    damaged[at] ^= 0x40;
    SliceHeader header;
    Status s = CheckSliceFrame(damaged, &header);
    EXPECT_TRUE(s.IsCorruption()) << "byte " << at << ": " << s.ToString();
  }
  SliceHeader header;
  EXPECT_TRUE(CheckSliceFrame(frame, &header).ok());
}

TEST(SliceCodecTest, ForgedPairCountIsBoundedByThePayloadOnHand) {
  std::string payload;
  AppendWirePair(&payload, "k", 1, "v", false, false);
  // The checksum is valid — the count itself is the forgery. The decoder
  // must reject before allocating for a billion pairs.
  const std::string frame =
      MakeSlice(0, 1, webindex::IndexType::kInverted, 1u << 30, payload);
  SliceHeader header;
  std::vector<PairView> pairs;
  Status s = DecodeSlicePacket(frame, &header, &pairs);
  EXPECT_TRUE(s.IsProtocol()) << s.ToString();
  EXPECT_NE(s.ToString().find("pair count exceeds payload"),
            std::string::npos);
}

TEST(SliceCodecTest, PayloadMustMatchPairCountExactly) {
  std::string one_pair;
  AppendWirePair(&one_pair, "key-0", 1, std::string(16, 'x'), false, false);

  // Declared two pairs, payload holds one (big enough to pass the
  // min-bytes bound): short.
  SliceHeader header;
  std::vector<PairView> pairs;
  Status s = DecodeSlicePacket(
      MakeSlice(0, 1, webindex::IndexType::kInverted, 2, one_pair), &header,
      &pairs);
  EXPECT_TRUE(s.IsProtocol()) << s.ToString();

  // Declared one pair, payload holds two: trailing bytes.
  std::string two_pairs = one_pair;
  AppendWirePair(&two_pairs, "key-1", 1, "y", false, false);
  s = DecodeSlicePacket(
      MakeSlice(0, 1, webindex::IndexType::kInverted, 1, two_pairs), &header,
      &pairs);
  EXPECT_TRUE(s.IsProtocol()) << s.ToString();
  EXPECT_NE(s.ToString().find("trailing"), std::string::npos);
}

TEST(SliceCodecTest, BadPairFlagsAndValueOnValuelessPairRejected) {
  std::string payload;
  AppendWirePair(&payload, "k", 1, "v", false, false);
  payload[0] = static_cast<char>(0x80);  // Unknown flag bit.
  SliceHeader header;
  std::vector<PairView> pairs;
  Status s = DecodeSlicePacket(
      MakeSlice(0, 1, webindex::IndexType::kInverted, 1, payload), &header,
      &pairs);
  EXPECT_TRUE(s.IsProtocol()) << s.ToString();

  // A hand-built dedup pair that smuggles a value anyway.
  std::string smuggled;
  smuggled.push_back(static_cast<char>(bifrost::wire::kPairFlagDedup));
  PutVarint64(&smuggled, 1);
  PutLengthPrefixedSlice(&smuggled, "k");
  PutLengthPrefixedSlice(&smuggled, "not-allowed");
  s = DecodeSlicePacket(
      MakeSlice(0, 1, webindex::IndexType::kInverted, 1, smuggled), &header,
      &pairs);
  EXPECT_TRUE(s.IsProtocol()) << s.ToString();
}

TEST(SliceCodecTest, UnknownIndexTypeRejected) {
  std::string payload;
  AppendWirePair(&payload, "k", 1, "v", false, false);
  const std::string frame = MakeSlice(
      0, 1, static_cast<webindex::IndexType>(7), 1, payload);
  SliceHeader header;
  EXPECT_TRUE(CheckSliceFrame(frame, &header).IsProtocol());
}

TEST(SliceCodecTest, ControlPayloadsRoundTripAndRejectBadSizes) {
  BulkBeginInfo info;
  info.version = 42;
  info.total_slices = 17;
  info.summary_bytes = 1000;
  info.inverted_bytes = 2000;
  std::string wire;
  EncodeBulkBegin(info, &wire);
  BulkBeginInfo out;
  ASSERT_TRUE(DecodeBulkBegin(wire, &out).ok());
  EXPECT_EQ(out.version, 42u);
  EXPECT_EQ(out.total_slices, 17u);
  EXPECT_EQ(out.summary_bytes, 1000u);
  EXPECT_EQ(out.inverted_bytes, 2000u);
  EXPECT_TRUE(DecodeBulkBegin(Slice(wire.data(), 31), &out).IsProtocol());
  EXPECT_TRUE(DecodeBulkBegin(wire + "x", &out).IsProtocol());

  std::string commit;
  EncodeBulkCommit(99, &commit);
  uint64_t expected = 0;
  ASSERT_TRUE(DecodeBulkCommit(commit, &expected).ok());
  EXPECT_EQ(expected, 99u);
  EXPECT_TRUE(DecodeBulkCommit(Slice(), &expected).IsProtocol());
}

TEST(SliceCodecTest, MissingSliceListBoundsItsDeclaredCount) {
  std::string wire;
  EncodeMissingSlices({3, 1, 4, 1, 5}, &wire);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(DecodeMissingSlices(wire, &ids).ok());
  EXPECT_EQ(ids, (std::vector<uint64_t>{3, 1, 4, 1, 5}));

  // A forged count far past the payload is rejected before reserve.
  std::string forged;
  PutVarint64(&forged, 1u << 20);
  PutFixed64(&forged, 9);
  Status s = DecodeMissingSlices(forged, &ids);
  EXPECT_TRUE(s.IsProtocol()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Engine ingest sessions
// ---------------------------------------------------------------------------

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 2048;  // 64 MiB device.
  return g;
}

class BulkIngestEngineTest : public ::testing::Test {
 protected:
  void Open(uint32_t num_shards = 1) {
    clock_ = std::make_unique<SimClock>();
    env_ = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                          ssd::LatencyModel(), clock_.get());
    options_.num_shards = num_shards;
    options_.aof.segment_bytes = 64 << 10;
    options_.aof.log_deletes = true;
    options_.auto_gc = false;
    auto opened = qindb::QinDb::Open(env_.get(), options_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(opened).value();
  }

  void Reopen() {
    db_.reset();
    auto opened = qindb::QinDb::Open(env_.get(), options_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(opened).value();
  }

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
  qindb::QinDbOptions options_;
  std::unique_ptr<qindb::QinDb> db_;
};

TEST_F(BulkIngestEngineTest, StagedPairsAreInvisibleUntilCommit) {
  Open();
  std::vector<std::string> keys, values;
  for (int i = 0; i < 8; ++i) {
    keys.push_back("bulk:k" + std::to_string(i));
    values.push_back("bv" + std::to_string(i));
  }
  std::vector<qindb::IngestOp> ops(8);
  for (int i = 0; i < 8; ++i) {
    ops[i].key = keys[i];
    ops[i].version = 2;
    ops[i].value = values[i];
  }

  ASSERT_TRUE(db_->IngestBegin(2).ok());
  ASSERT_TRUE(db_->IngestRun(2, ops.data(), ops.size()).ok());
  // Durable but unindexed: nothing is readable, latest included.
  for (const std::string& key : keys) {
    EXPECT_TRUE(db_->Get(key, 2).status().IsNotFound());
    EXPECT_TRUE(db_->GetLatest(key).status().IsNotFound());
  }
  ASSERT_TRUE(db_->IngestCommit(2).ok());
  for (int i = 0; i < 8; ++i) {
    Result<std::string> got = db_->Get(keys[i], 2);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, values[i]);
  }
  EXPECT_EQ(db_->VersionCounts()[2], 8u);
}

TEST_F(BulkIngestEngineTest, AbortLeavesNoTraceAndReleasesMaintenance) {
  Open();
  ASSERT_TRUE(db_->IngestBegin(5).ok());
  std::string key = "gone:k";
  std::string value(1024, 'z');
  qindb::IngestOp op;
  op.key = key;
  op.version = 5;
  op.value = value;
  ASSERT_TRUE(db_->IngestRun(5, &op, 1).ok());

  // Maintenance is deferred while the session is open.
  EXPECT_TRUE(db_->ForceGc().IsBusy());

  ASSERT_TRUE(db_->IngestAbort(5).ok());
  EXPECT_TRUE(db_->Get(key, 5).status().IsNotFound());
  // The deferral lifts with the session, and GC reclaims the staged bytes.
  EXPECT_TRUE(db_->ForceGc().ok());
  EXPECT_TRUE(db_->Get(key, 5).status().IsNotFound());
  EXPECT_EQ(db_->VersionCounts().count(5), 0u);
}

TEST_F(BulkIngestEngineTest, DedupAndTombstonePairsApplyAtCommit) {
  Open();
  ASSERT_TRUE(db_->Put("dd:a", 1, "base-value").ok());
  ASSERT_TRUE(db_->Put("dd:b", 1, "doomed").ok());

  std::vector<qindb::IngestOp> ops(2);
  ops[0].key = "dd:a";
  ops[0].version = 2;
  ops[0].dedup = true;  // Resolves by traceback to version 1.
  ops[1].key = "dd:b";
  ops[1].version = 1;
  ops[1].tombstone = true;  // The d-flag riding the load.

  ASSERT_TRUE(db_->IngestBegin(2).ok());
  ASSERT_TRUE(db_->IngestRun(2, ops.data(), ops.size()).ok());
  // Pre-commit: the dedup pair is invisible and the delete unapplied.
  EXPECT_TRUE(db_->Get("dd:a", 2).status().IsNotFound());
  ASSERT_TRUE(db_->Get("dd:b", 1).ok());
  ASSERT_TRUE(db_->IngestCommit(2).ok());

  Result<std::string> got = db_->Get("dd:a", 2);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "base-value");
  EXPECT_TRUE(db_->Get("dd:b", 1).status().IsNotFound());
}

TEST_F(BulkIngestEngineTest, RunValidationFailsWholeWithoutClosingSession) {
  Open();
  ASSERT_TRUE(db_->IngestBegin(3).ok());

  qindb::IngestOp wrong;
  wrong.key = "w:k";
  wrong.version = 4;  // Not the session version.
  wrong.value = "v";
  EXPECT_TRUE(db_->IngestRun(3, &wrong, 1).IsInvalidArgument());

  qindb::IngestOp empty;
  empty.version = 3;
  empty.value = "v";
  EXPECT_TRUE(db_->IngestRun(3, &empty, 1).IsInvalidArgument());

  // The session survived both rejections.
  qindb::IngestOp good;
  good.key = "w:k";
  good.version = 3;
  good.value = "v";
  ASSERT_TRUE(db_->IngestRun(3, &good, 1).ok());
  ASSERT_TRUE(db_->IngestCommit(3).ok());
  ASSERT_TRUE(db_->Get("w:k", 3).ok());

  // No session anywhere: run and abort say so, commit of an unknown
  // version too.
  EXPECT_TRUE(db_->IngestRun(9, &good, 1).IsInvalidArgument());
  EXPECT_TRUE(db_->IngestCommit(9).IsInvalidArgument());
}

TEST_F(BulkIngestEngineTest, CommittedVersionSurvivesGcAndReopen) {
  Open();
  std::vector<std::string> keys, values;
  for (int i = 0; i < 16; ++i) {
    keys.push_back("dur:k" + std::to_string(i));
    values.push_back("dv" + std::to_string(i));
  }
  std::vector<qindb::IngestOp> ops(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ops[i].key = keys[i];
    ops[i].version = 4;
    ops[i].value = values[i];
  }
  ASSERT_TRUE(db_->IngestBegin(4).ok());
  ASSERT_TRUE(db_->IngestRun(4, ops.data(), ops.size()).ok());
  ASSERT_TRUE(db_->IngestCommit(4).ok());
  // Commit markers are kept forever by GC's classify rule; the pairs must
  // survive a full collection and a reopen.
  ASSERT_TRUE(db_->ForceGc().ok());
  Reopen();
  for (size_t i = 0; i < keys.size(); ++i) {
    Result<std::string> got = db_->Get(keys[i], 4);
    ASSERT_TRUE(got.ok()) << keys[i] << ": " << got.status().ToString();
    EXPECT_EQ(*got, "dv" + std::to_string(i));
  }
  // Recovery re-seeded the idempotency set from the on-disk marker: a
  // commit retry arriving after the reopen still answers OK.
  EXPECT_TRUE(db_->IngestCommit(4).ok());
}

TEST_F(BulkIngestEngineTest, TornCrossShardCommitRetriesToCompletion) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoint sites compiled out";
  }
  Open(/*num_shards=*/4);
  std::vector<std::string> keys, values;
  for (int i = 0; i < 32; ++i) {
    keys.push_back("torn:k" + std::to_string(i));
    values.push_back("tv" + std::to_string(i));
  }
  std::vector<qindb::IngestOp> ops(keys.size());
  std::set<uint32_t> shards;
  for (size_t i = 0; i < keys.size(); ++i) {
    ops[i].key = keys[i];
    ops[i].version = 6;
    ops[i].value = values[i];
    shards.insert(db_->ShardOf(keys[i]));
  }
  ASSERT_GT(shards.size(), 1u) << "keys must span shards for this test";

  ASSERT_TRUE(db_->IngestBegin(6).ok());
  ASSERT_TRUE(db_->IngestRun(6, ops.data(), ops.size()).ok());

  auto& reg = failpoint::Registry::Instance();
  ASSERT_TRUE(reg.Activate("qindb_ingest_commit", "1*return(io)").ok());
  Status torn = db_->IngestCommit(6);
  reg.Deactivate("qindb_ingest_commit");
  ASSERT_FALSE(torn.ok());

  // The commit tore between shards: shard 0 is committed (its keys
  // visible), the rest still staged (invisible).
  for (size_t i = 0; i < keys.size(); ++i) {
    const bool visible = db_->Get(keys[i], 6).ok();
    EXPECT_EQ(visible, db_->ShardOf(keys[i]) == 0) << keys[i];
  }

  // The retry must complete: already-committed shards answer OK
  // (idempotent), the rest commit now.
  ASSERT_TRUE(db_->IngestCommit(6).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    Result<std::string> got = db_->Get(keys[i], 6);
    ASSERT_TRUE(got.ok()) << keys[i] << ": " << got.status().ToString();
    EXPECT_EQ(*got, "tv" + std::to_string(i));
  }
  EXPECT_TRUE(db_->ForceGc().ok());
}

// ---------------------------------------------------------------------------
// End-to-end over real sockets
// ---------------------------------------------------------------------------

mint::MintOptions SmallClusterOptions() {
  mint::MintOptions options;
  options.num_groups = 2;
  options.nodes_per_group = 1;
  options.replicas = 1;
  options.parallel_reads = false;
  options.engine.aof.segment_bytes = 4 << 20;
  return options;
}

class BulkLoadServerTest : public ::testing::Test {
 protected:
  void StartAll(server::KvServerOptions options = server::KvServerOptions()) {
    cluster_ = std::make_unique<mint::MintCluster>(SmallClusterOptions());
    ASSERT_TRUE(cluster_->Start().ok());
    server_ = std::make_unique<server::KvServer>(cluster_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    failpoint::Registry::Instance().DeactivateAll();
  }

  rpc::RpcClient MakeClient() {
    return rpc::RpcClient("127.0.0.1", server_->port());
  }

  std::unique_ptr<mint::MintCluster> cluster_;
  std::unique_ptr<server::KvServer> server_;
};

TEST_F(BulkLoadServerTest, StreamsAVersionIntoTheLiveCluster) {
  StartAll();
  rpc::RpcClient client = MakeClient();

  // Version 1 goes in through the normal write path: the dedup pairs below
  // resolve through it by traceback, and the shipped deletes remove it.
  constexpr int kKeys = 120;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(
        client.Put("e2e:k" + std::to_string(i), 1, "old" + std::to_string(i))
            .ok());
  }

  std::vector<ShippedPair> summary, inverted;
  std::vector<BulkDelete> deletes;
  for (int i = 0; i < kKeys; ++i) {
    ShippedPair pair;
    pair.key = "e2e:k" + std::to_string(i);
    if (i % 5 == 0) {
      pair.dedup = true;  // Unchanged since version 1.
    } else {
      pair.value = "new" + std::to_string(i) + std::string(200, 'p');
    }
    (i % 2 == 0 ? summary : inverted).push_back(std::move(pair));
    if (i % 7 == 0) {
      deletes.push_back(BulkDelete{"e2e:k" + std::to_string(i), 1});
    }
  }

  BulkLoadOptions options;
  options.slice_bytes = 2048;  // Many slices; exercises the send window.
  options.send_window = 4;
  rpc::RpcClient load_client = MakeClient();
  BulkLoader loader(&load_client, options);
  BulkLoadReport report;
  Status s = loader.Load(2, summary, inverted, deletes, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();

  EXPECT_GT(report.slices_total, 4u);
  EXPECT_EQ(report.pairs_total,
            static_cast<uint64_t>(kKeys) + deletes.size());
  EXPECT_EQ(report.checksum_nacks, 0u);
  EXPECT_EQ(report.repair_rounds, 0u);
  EXPECT_EQ(server_->counters().bulk_sessions_opened.load(), 1u);
  EXPECT_EQ(server_->counters().bulk_slices_landed.load(),
            report.slices_total);

  // Every shipped pair is live as version 2 with the right value; dedup
  // pairs resolve to the version-1 value; deleted version-1 pairs are gone,
  // the rest still there.
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "e2e:k" + std::to_string(i);
    Result<std::string> got = client.Get(key, 2);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    if (i % 5 == 0) {
      EXPECT_EQ(*got, "old" + std::to_string(i)) << key;
    } else {
      EXPECT_EQ(*got, "new" + std::to_string(i) + std::string(200, 'p'))
          << key;
    }
    Result<std::string> latest = client.GetLatest(key);
    ASSERT_TRUE(latest.ok()) << key;
    EXPECT_EQ(*latest, *got) << key;
    Result<std::string> old = client.Get(key, 1);
    if (i % 7 == 0 && i % 5 != 0) {
      EXPECT_TRUE(old.status().IsNotFound()) << key;
    } else if (i % 7 != 0) {
      ASSERT_TRUE(old.ok()) << key;
    }
  }

  // The session is closed: a second load on the same connection works.
  std::vector<ShippedPair> next;
  ShippedPair pair;
  pair.key = "e2e:extra";
  pair.value = "v3";
  next.push_back(pair);
  ASSERT_TRUE(loader.Load(3, next, {}, {}).ok());
  Result<std::string> extra = client.Get("e2e:extra", 3);
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(*extra, "v3");
}

TEST_F(BulkLoadServerTest, CorruptedSliceIsNackedAndRepairedInFlight) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoint sites compiled out";
  }
  StartAll();

  std::vector<ShippedPair> inverted;
  for (int i = 0; i < 40; ++i) {
    ShippedPair pair;
    pair.key = "fix:k" + std::to_string(i);
    pair.value = "fv" + std::to_string(i) + std::string(100, 'q');
    inverted.push_back(std::move(pair));
  }

  auto& reg = failpoint::Registry::Instance();
  ASSERT_TRUE(reg.Activate("bulk_slice_corrupt", "1*corrupt").ok());

  BulkLoadOptions options;
  options.slice_bytes = 1024;
  rpc::RpcClient load_client = MakeClient();
  BulkLoader loader(&load_client, options);
  BulkLoadReport report;
  Status s = loader.Load(2, {}, inverted, {}, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // The damaged slice was NACKed by the per-hop checksum and repaired by a
  // pristine re-send — the session never failed.
  EXPECT_GE(report.checksum_nacks, 1u);
  EXPECT_GE(report.slices_resent, 1u);
  EXPECT_GE(server_->counters().bulk_checksum_rejects.load(), 1u);
  EXPECT_EQ(server_->counters().stream_errors.load(), 0u);

  rpc::RpcClient client = MakeClient();
  for (int i = 0; i < 40; ++i) {
    const std::string key = "fix:k" + std::to_string(i);
    Result<std::string> got = client.Get(key, 2);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, "fv" + std::to_string(i) + std::string(100, 'q'));
  }
}

// Builds one single-pair slice frame for the raw-frame tests.
std::string OnePairSlice(uint64_t slice_id, uint64_t version,
                         const std::string& key, const std::string& value) {
  std::string payload;
  AppendWirePair(&payload, key, version, value, false, false);
  return MakeSlice(slice_id, version, webindex::IndexType::kInverted, 1,
                   payload);
}

TEST_F(BulkLoadServerTest, CommitReportsMissingSlicesForRepair) {
  StartAll();
  rpc::RpcClient raw = MakeClient();
  ASSERT_TRUE(raw.Connect().ok());

  auto exchange = [&raw](rpc::Frame frame) {
    frame.request_id = raw.NextRequestId();
    Status s = raw.Send(frame);
    if (!s.ok()) return Result<rpc::Frame>(s);
    return raw.Receive();
  };

  // A slice before any session is refused without touching the engine.
  rpc::Frame stray;
  stray.op = rpc::Opcode::kBulkSlice;
  stray.version = 2;
  stray.value = OnePairSlice(0, 2, "ms:k0", "mv0");
  Result<rpc::Frame> resp = exchange(stray);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, StatusCode::kInvalidArgument);

  BulkBeginInfo info;
  info.version = 2;
  info.total_slices = 3;
  rpc::Frame begin;
  begin.op = rpc::Opcode::kBulkBegin;
  begin.version = 2;
  EncodeBulkBegin(info, &begin.value);
  resp = exchange(begin);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, StatusCode::kOk);

  // Land slices 0 and 2 of 3 — slice 0 twice; the duplicate is an ack, not
  // an error.
  for (uint64_t id : {uint64_t{0}, uint64_t{2}, uint64_t{0}}) {
    rpc::Frame slice;
    slice.op = rpc::Opcode::kBulkSlice;
    slice.version = 2;
    slice.value = OnePairSlice(id, 2, "ms:k" + std::to_string(id),
                               "mv" + std::to_string(id));
    resp = exchange(slice);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, StatusCode::kOk) << "slice " << id;
  }

  // Commit names the gap instead of failing the session.
  rpc::Frame commit;
  commit.op = rpc::Opcode::kBulkCommit;
  commit.version = 2;
  EncodeBulkCommit(3, &commit.value);
  resp = exchange(commit);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, StatusCode::kUnavailable);
  std::vector<uint64_t> missing;
  ASSERT_TRUE(DecodeMissingSlices(resp->value, &missing).ok());
  EXPECT_EQ(missing, std::vector<uint64_t>{1});
  // Nothing is visible yet — the commit did not partially apply.
  rpc::RpcClient reader = MakeClient();
  EXPECT_TRUE(reader.Get("ms:k0", 2).status().IsNotFound());

  // Repair the gap and commit again.
  rpc::Frame slice;
  slice.op = rpc::Opcode::kBulkSlice;
  slice.version = 2;
  slice.value = OnePairSlice(1, 2, "ms:k1", "mv1");
  resp = exchange(slice);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, StatusCode::kOk);

  commit.value.clear();
  EncodeBulkCommit(3, &commit.value);
  resp = exchange(commit);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, StatusCode::kOk);

  for (int i = 0; i < 3; ++i) {
    const std::string key = "ms:k" + std::to_string(i);
    Result<std::string> got = reader.Get(key, 2);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, "mv" + std::to_string(i));
  }
}

TEST_F(BulkLoadServerTest, AbortRollsTheStagedVersionBack) {
  StartAll();
  rpc::RpcClient raw = MakeClient();
  ASSERT_TRUE(raw.Connect().ok());
  auto exchange = [&raw](rpc::Frame frame) {
    frame.request_id = raw.NextRequestId();
    Status s = raw.Send(frame);
    if (!s.ok()) return Result<rpc::Frame>(s);
    return raw.Receive();
  };

  BulkBeginInfo info;
  info.version = 3;
  rpc::Frame begin;
  begin.op = rpc::Opcode::kBulkBegin;
  begin.version = 3;
  EncodeBulkBegin(info, &begin.value);
  Result<rpc::Frame> resp = exchange(begin);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, StatusCode::kOk);

  rpc::Frame slice;
  slice.op = rpc::Opcode::kBulkSlice;
  slice.version = 3;
  slice.value = OnePairSlice(0, 3, "ab:k", "never-visible");
  resp = exchange(slice);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, StatusCode::kOk);

  rpc::Frame abort;
  abort.op = rpc::Opcode::kBulkAbort;
  abort.version = 3;
  resp = exchange(abort);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  // Abort is idempotent — a second one (no session left) still answers OK.
  resp = exchange(abort);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);

  rpc::RpcClient reader = MakeClient();
  EXPECT_TRUE(reader.Get("ab:k", 3).status().IsNotFound());

  // The connection is reusable: a fresh session on it loads fine.
  BulkLoadOptions options;
  BulkLoader loader(&raw, options);
  std::vector<ShippedPair> pairs;
  ShippedPair pair;
  pair.key = "ab:k";
  pair.value = "visible";
  pairs.push_back(pair);
  ASSERT_TRUE(loader.Load(4, pairs, {}, {}).ok());
  Result<std::string> got = reader.Get("ab:k", 4);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "visible");
}

TEST_F(BulkLoadServerTest, BulkFrameBoundIsNegotiatedNotDefault) {
  StartAll();

  // Without a session the connection keeps the tight default bound: a frame
  // over rpc::kMaxBodyBytes is a protocol error and tears the connection
  // down.
  {
    Result<rpc::Socket> sock =
        rpc::ConnectTo("127.0.0.1", server_->port(), 1000);
    ASSERT_TRUE(sock.ok());
    rpc::Frame oversized;
    oversized.op = rpc::Opcode::kBulkSlice;
    oversized.version = 2;
    oversized.value.assign(rpc::kMaxBodyBytes + 1024, 'x');
    std::string wire;
    rpc::EncodeFrame(oversized, &wire);
    ASSERT_TRUE(sock->SendAll(wire, 2000).ok());

    rpc::FrameDecoder decoder;
    rpc::Frame response;
    bool got_response = false, closed = false;
    char buf[4096];
    for (int spins = 0; spins < 100 && !closed; ++spins) {
      Result<size_t> n = sock->RecvSome(buf, sizeof(buf), 100);
      if (!n.ok()) {
        if (n.status().IsTimedOut()) continue;
        closed = true;
        break;
      }
      if (*n == 0) {
        closed = true;
        break;
      }
      decoder.Append(buf, *n);
      Result<bool> next = decoder.Next(&response);
      ASSERT_TRUE(next.ok());
      if (*next) got_response = true;
    }
    ASSERT_TRUE(got_response) << "no error frame before teardown";
    EXPECT_TRUE(closed);
    EXPECT_EQ(response.status, StatusCode::kProtocol);
  }

  // With a session open the bound is raised to the bulk limit: a slice
  // whose frame exceeds the default bound goes through.
  std::vector<ShippedPair> big;
  for (int i = 0; i < 3; ++i) {
    ShippedPair pair;
    pair.key = "big:k" + std::to_string(i);
    pair.value.assign((rpc::kMaxBodyBytes / 2) + (64 << 10), 'B');
    big.push_back(std::move(pair));
  }
  BulkLoadOptions options;
  options.slice_bytes = rpc::kMaxBulkBodyBytes / 2;  // Seals past 4 MiB.
  rpc::RpcClient load_client = MakeClient();
  BulkLoader loader(&load_client, options);
  BulkLoadReport report;
  Status s = loader.Load(2, {}, big, {}, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The point of the test: at least one shipped frame was bigger than the
  // non-bulk bound.
  EXPECT_GT(report.bytes_shipped, rpc::kMaxBodyBytes);
  EXPECT_LT(report.slices_total, 3u + 1u);

  rpc::RpcClient reader = MakeClient();
  for (int i = 0; i < 3; ++i) {
    Result<std::string> got = reader.Get("big:k" + std::to_string(i), 2);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->size(), (rpc::kMaxBodyBytes / 2) + (64 << 10));
  }
}

}  // namespace
}  // namespace directload
