// End-to-end serving tests over real localhost sockets: a KvServer hosting
// a small mint::MintCluster, driven by RpcClients on real threads. Covers
// the full request surface, pipelining, concurrent clients, a client dying
// mid-frame, admission control, the protocol-corruption matrix at the
// socket level, idle timeouts, and the graceful-drain guarantee: every
// acknowledged PUT is readable after the server is restarted on the same
// cluster.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"
#include "server/kv_server.h"

namespace directload::server {
namespace {

mint::MintOptions SmallClusterOptions() {
  mint::MintOptions options;
  // A compact topology keeps each test fast: two groups of one node each,
  // no replication fan-out, sequential replica reads (no thread per read —
  // the serving layer supplies the real-thread concurrency here).
  options.num_groups = 2;
  options.nodes_per_group = 1;
  options.replicas = 1;
  options.parallel_reads = false;
  options.engine.aof.segment_bytes = 4 << 20;
  return options;
}

class ServerSmokeTest : public ::testing::Test {
 protected:
  void StartCluster() {
    cluster_ = std::make_unique<mint::MintCluster>(SmallClusterOptions());
    ASSERT_TRUE(cluster_->Start().ok());
  }

  void StartServer(KvServerOptions options = KvServerOptions()) {
    server_ = std::make_unique<KvServer>(cluster_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  rpc::RpcClient MakeClient() {
    return rpc::RpcClient("127.0.0.1", server_->port());
  }

  std::unique_ptr<mint::MintCluster> cluster_;
  std::unique_ptr<KvServer> server_;
};

TEST_F(ServerSmokeTest, FullRequestSurface) {
  StartCluster();
  StartServer();
  rpc::RpcClient client = MakeClient();

  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Put("url:a", 1, "hello").ok());
  EXPECT_TRUE(client.Put("url:a", 2, "world").ok());

  Result<std::string> got = client.Get("url:a", 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "hello");

  got = client.GetLatest("url:a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "world");

  // Deduplicated put: the value is resolved by traceback to version 2.
  EXPECT_TRUE(client.Put("url:a", 3, "", /*dedup=*/true).ok());
  got = client.Get("url:a", 3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "world");

  EXPECT_TRUE(client.Del("url:a", 1).ok());
  EXPECT_TRUE(client.Get("url:a", 1).status().IsNotFound());
  EXPECT_TRUE(client.Get("url:missing", 1).status().IsNotFound());

  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("server:"), std::string::npos);
  EXPECT_NE(stats->find("cluster:"), std::string::npos);

  server_->Shutdown();
  EXPECT_GE(server_->counters().requests_served.load(), 9u);
}

TEST_F(ServerSmokeTest, WriteBatchRoundTripWithPerOpStatuses) {
  StartCluster();
  StartServer();
  rpc::RpcClient client = MakeClient();

  std::vector<rpc::BatchOp> ops(4);
  ops[0].key = "wb:a";
  ops[0].version = 1;
  ops[0].value = "alpha";
  ops[1].key = "wb:b";
  ops[1].version = 1;
  ops[1].value = "beta";
  ops[2].key = "wb:a";
  ops[2].version = 2;
  ops[2].dedup = true;  // Resolves through version 1 by traceback.
  ops[3].key = "wb:missing";
  ops[3].version = 1;
  ops[3].is_del = true;  // Fails alone: nothing to delete.

  std::vector<Status> statuses;
  Status overall = client.WriteBatch(ops, &statuses);
  EXPECT_TRUE(overall.IsNotFound()) << overall.ToString();
  ASSERT_EQ(statuses.size(), ops.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_TRUE(statuses[3].IsNotFound());

  Result<std::string> got = client.Get("wb:a", 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "alpha");
  got = client.Get("wb:b", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "beta");
  got = client.Get("wb:a", 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "alpha");

  // A malformed batch payload is rejected at the frame level, before any
  // op executes.
  ASSERT_TRUE(client.Connect().ok());
  rpc::Frame raw;
  raw.op = rpc::Opcode::kWriteBatch;
  raw.request_id = client.NextRequestId();
  raw.value = "not a batch payload";
  ASSERT_TRUE(client.Send(raw).ok());
  Result<rpc::Frame> response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, StatusCode::kProtocol);

  // An empty batch is answered client-side without a round trip.
  std::vector<Status> empty_statuses;
  EXPECT_TRUE(client.WriteBatch({}, &empty_statuses).ok());
  EXPECT_TRUE(empty_statuses.empty());
}

TEST_F(ServerSmokeTest, SingleOpWritesAreBatchedOpportunistically) {
  StartCluster();
  // One worker: pipelined single-op PUTs pile up in the queue behind
  // whatever it is executing, and its drain path groups them.
  KvServerOptions options;
  options.num_workers = 1;
  options.max_write_batch = 16;
  StartServer(options);
  rpc::RpcClient client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());

  // Each burst usually lands while the worker is mid-op, but the scheduler
  // could in principle let it race every enqueue — so repeat bursts until
  // the counter proves a drain actually grouped (converges immediately in
  // practice).
  constexpr int kDepth = 16;
  int sent = 0;
  int bursts = 0;
  for (; bursts < 50 && server_->counters().writes_batched.load() == 0;
       ++bursts) {
    for (int i = 0; i < kDepth; ++i, ++sent) {
      rpc::Frame request;
      request.op = rpc::Opcode::kPut;
      request.request_id = client.NextRequestId();
      request.version = 1;
      request.key = "ob:k" + std::to_string(sent);
      request.value = "v" + std::to_string(sent);
      ASSERT_TRUE(client.Send(request).ok());
    }
    for (int i = 0; i < kDepth; ++i) {
      Result<rpc::Frame> response = client.Receive();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->status, StatusCode::kOk);
    }
  }
  EXPECT_GT(server_->counters().writes_batched.load(), 0u)
      << "no burst ever grouped after " << bursts << " tries";

  // Every write is individually readable regardless of how it was grouped.
  for (int i = 0; i < sent; ++i) {
    Result<std::string> got = client.Get("ob:k" + std::to_string(i), 1);
    ASSERT_TRUE(got.ok()) << "ob:k" << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

TEST_F(ServerSmokeTest, ConcurrentClients) {
  StartCluster();
  StartServer();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 40;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rpc::RpcClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + ":k" + std::to_string(i);
        const std::string value = "v" + std::to_string(t * 1000 + i);
        if (!client.Put(key, 1, value).ok()) {
          failures.fetch_add(1);
          continue;
        }
        Result<std::string> got = client.Get(key, 1);
        if (!got.ok() || *got != value) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server_->Shutdown();
  EXPECT_EQ(server_->counters().requests_served.load(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread * 2);
}

TEST_F(ServerSmokeTest, PipelinedRequestsMatchByRequestId) {
  StartCluster();
  StartServer();
  rpc::RpcClient client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());

  constexpr int kDepth = 16;
  std::map<uint64_t, std::string> expected_value;  // id -> key
  for (int i = 0; i < kDepth; ++i) {
    rpc::Frame request;
    request.op = rpc::Opcode::kPut;
    request.request_id = client.NextRequestId();
    request.version = 1;
    request.key = "pipe:k" + std::to_string(i);
    request.value = "pv" + std::to_string(i);
    expected_value[request.request_id] = request.value;
    ASSERT_TRUE(client.Send(request).ok());
  }
  // All kDepth responses arrive, each naming its request.
  std::map<uint64_t, StatusCode> results;
  for (int i = 0; i < kDepth; ++i) {
    Result<rpc::Frame> response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    results[response->request_id] = response->status;
  }
  ASSERT_EQ(results.size(), expected_value.size());
  for (const auto& [id, status] : results) {
    EXPECT_TRUE(expected_value.count(id)) << "unknown response id " << id;
    EXPECT_EQ(status, StatusCode::kOk);
  }
  // The writes really happened.
  for (int i = 0; i < kDepth; ++i) {
    Result<std::string> got = client.Get("pipe:k" + std::to_string(i), 1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "pv" + std::to_string(i));
  }
}

TEST_F(ServerSmokeTest, AdmissionControlAnswersBusyNotQueueGrowth) {
  StartCluster();
  KvServerOptions options;
  options.num_workers = 1;
  options.max_queued_requests = 2;  // Tiny bound to force rejections.
  StartServer(options);
  rpc::RpcClient client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());

  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    rpc::Frame request;
    request.op = rpc::Opcode::kPut;
    request.request_id = client.NextRequestId();
    request.version = 1;
    request.key = "busy:k" + std::to_string(i);
    request.value = "bv" + std::to_string(i);
    ASSERT_TRUE(client.Send(request).ok());
  }
  int ok = 0, busy = 0;
  std::vector<std::string> acked_keys;
  for (int i = 0; i < kBurst; ++i) {
    Result<rpc::Frame> response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->status == StatusCode::kOk) {
      ++ok;
    } else {
      // The only legal rejection is kBusy — admission control, not drops.
      ASSERT_EQ(response->status, StatusCode::kBusy);
      ++busy;
    }
  }
  EXPECT_EQ(ok + busy, kBurst);
  EXPECT_GT(ok, 0);
  // Every acknowledged put must be readable; every busy-rejected one must
  // not have been applied half-way — a clean accept/reject split.
  server_->Shutdown();
  EXPECT_EQ(server_->counters().requests_rejected_busy.load(),
            static_cast<uint64_t>(busy));
}

TEST_F(ServerSmokeTest, SurvivesClientsDyingMidFrame) {
  StartCluster();
  StartServer();
  {
    // A client that connects, sends half a valid frame, and vanishes.
    Result<rpc::Socket> half = rpc::ConnectTo("127.0.0.1", server_->port(),
                                              1000);
    ASSERT_TRUE(half.ok());
    rpc::Frame request;
    request.op = rpc::Opcode::kPut;
    request.key = "doomed";
    request.value = std::string(1000, 'x');
    std::string wire;
    rpc::EncodeFrame(request, &wire);
    ASSERT_TRUE(
        half->SendAll(Slice(wire.data(), wire.size() / 2), 1000).ok());
  }  // Socket closes here, mid-frame.
  {
    // A client that sends pure garbage.
    Result<rpc::Socket> garbage = rpc::ConnectTo("127.0.0.1",
                                                 server_->port(), 1000);
    ASSERT_TRUE(garbage.ok());
    ASSERT_TRUE(garbage->SendAll("complete nonsense bytes", 1000).ok());
  }
  // The server keeps serving everyone else.
  rpc::RpcClient client = MakeClient();
  EXPECT_TRUE(client.Put("alive", 1, "yes").ok());
  Result<std::string> got = client.Get("alive", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "yes");
}

TEST_F(ServerSmokeTest, CorruptFramesGetErrorResponseAndTeardown) {
  StartCluster();
  StartServer();

  struct Case {
    const char* name;
    StatusCode expected;
    std::string (*damage)(std::string wire);
  };
  const Case cases[] = {
      {"bad magic", StatusCode::kProtocol,
       [](std::string wire) {
         wire[0] = 'X';
         return wire;
       }},
      {"flipped payload byte", StatusCode::kCorruption,
       [](std::string wire) {
         wire[wire.size() / 2] ^= 0x5A;
         return wire;
       }},
      {"oversized length", StatusCode::kProtocol,
       [](std::string wire) {
         EncodeFixed32(&wire[4],
                       static_cast<uint32_t>(rpc::kMaxBodyBytes) + 1);
         return wire;
       }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    Result<rpc::Socket> raw =
        rpc::ConnectTo("127.0.0.1", server_->port(), 1000);
    ASSERT_TRUE(raw.ok());
    rpc::Frame request;
    request.op = rpc::Opcode::kPut;
    request.request_id = 7;
    request.version = 1;
    request.key = "corrupt";
    request.value = "never-applied";
    std::string wire;
    rpc::EncodeFrame(request, &wire);
    ASSERT_TRUE(raw->SendAll(c.damage(wire), 1000).ok());

    // The server answers with an error frame naming the cause, then closes.
    rpc::FrameDecoder decoder;
    rpc::Frame response;
    bool got_response = false, closed = false;
    char buf[4096];
    for (int spins = 0; spins < 100 && !closed; ++spins) {
      Result<size_t> n = raw->RecvSome(buf, sizeof(buf), 100);
      if (!n.ok()) {
        if (n.status().IsTimedOut()) continue;
        closed = true;
        break;
      }
      if (*n == 0) {
        closed = true;
        break;
      }
      decoder.Append(buf, *n);
      Result<bool> next = decoder.Next(&response);
      ASSERT_TRUE(next.ok());
      if (*next) got_response = true;
    }
    ASSERT_TRUE(got_response) << "no error frame before teardown";
    EXPECT_TRUE(closed) << "connection not torn down";
    EXPECT_TRUE(response.response);
    EXPECT_EQ(response.status, c.expected);
    // The damaged PUT was never applied.
    rpc::RpcClient client = MakeClient();
    EXPECT_TRUE(client.Get("corrupt", 1).status().IsNotFound());
  }
  EXPECT_GE(server_->counters().stream_errors.load(), 3u);
}

TEST_F(ServerSmokeTest, IdleConnectionsAreClosed) {
  StartCluster();
  KvServerOptions options;
  options.idle_timeout_ms = 150;
  StartServer(options);

  Result<rpc::Socket> idle = rpc::ConnectTo("127.0.0.1", server_->port(),
                                            1000);
  ASSERT_TRUE(idle.ok());
  // The server closes the connection once the idle window lapses; the read
  // observes EOF (or a reset, depending on timing).
  char buf[64];
  bool closed = false;
  for (int spins = 0; spins < 100 && !closed; ++spins) {
    Result<size_t> n = idle->RecvSome(buf, sizeof(buf), 100);
    if (n.ok() && *n == 0) closed = true;
    if (!n.ok() && !n.status().IsTimedOut()) closed = true;
  }
  EXPECT_TRUE(closed);
  server_->Shutdown();
  EXPECT_GE(server_->counters().connections_idle_closed.load(), 1u);
}

TEST_F(ServerSmokeTest, PerConnectionThrottlingStillServes) {
  StartCluster();
  KvServerOptions options;
  options.conn_bytes_per_sec = 64 * 1024;
  options.conn_burst_bytes = 4 * 1024;
  StartServer(options);
  rpc::RpcClient client = MakeClient();
  for (int i = 0; i < 5; ++i) {
    const std::string key = "throttle:k" + std::to_string(i);
    ASSERT_TRUE(client.Put(key, 1, std::string(512, 'p')).ok());
    Result<std::string> got = client.Get(key, 1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), 512u);
  }
}

TEST_F(ServerSmokeTest, GracefulDrainLosesNoAcknowledgedWrite) {
  StartCluster();
  StartServer();

  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::vector<std::pair<std::string, std::string>>> acked(
      kWriters);

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      rpc::RpcClient::Options client_options;
      client_options.max_reconnects = 0;  // A drained server stays down.
      rpc::RpcClient client("127.0.0.1", server_->port(), client_options);
      for (int i = 0; !stop.load(); ++i) {
        const std::string key =
            "drain:t" + std::to_string(t) + ":k" + std::to_string(i);
        const std::string value = "dv" + std::to_string(i);
        if (client.Put(key, 1, value).ok()) {
          // Acknowledged: the drain contract says this write is durable in
          // the cluster no matter when the shutdown lands.
          acked[t].emplace_back(key, value);
        }
      }
    });
  }
  // Let the writers get going, then drain mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server_->Shutdown();
  stop.store(true);
  for (std::thread& t : writers) t.join();

  size_t total_acked = 0;
  for (const auto& per_thread : acked) total_acked += per_thread.size();
  ASSERT_GT(total_acked, 0u) << "no write was acknowledged before the drain";

  // Restart serving on the SAME cluster: every acknowledged put must be
  // there.
  server_ = std::make_unique<KvServer>(cluster_.get(), KvServerOptions());
  ASSERT_TRUE(server_->Start().ok());
  rpc::RpcClient reader = MakeClient();
  for (const auto& per_thread : acked) {
    for (const auto& [key, value] : per_thread) {
      Result<std::string> got = reader.Get(key, 1);
      ASSERT_TRUE(got.ok()) << "acknowledged write lost: " << key << " ("
                            << got.status().ToString() << ")";
      EXPECT_EQ(*got, value);
    }
  }
}

TEST_F(ServerSmokeTest, ServerRestartsOnSamePort) {
  StartCluster();
  StartServer();
  rpc::RpcClient client = MakeClient();
  ASSERT_TRUE(client.Put("restart:a", 1, "before").ok());
  const uint16_t port = server_->port();
  server_->Shutdown();

  KvServerOptions options;
  options.port = port;
  server_ = std::make_unique<KvServer>(cluster_.get(), options);
  ASSERT_TRUE(server_->Start().ok());
  EXPECT_EQ(server_->port(), port);
  // The client's bounded reconnect picks the new server up transparently.
  Result<std::string> got = client.Get("restart:a", 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "before");
}

}  // namespace
}  // namespace directload::server
