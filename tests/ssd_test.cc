#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/random.h"
#include "common/sim_clock.h"
#include "ssd/device.h"
#include "ssd/env.h"
#include "ssd/ftl.h"
#include "ssd/native.h"

namespace directload::ssd {
namespace {

Geometry SmallGeometry() {
  Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 64;
  g.overprovision = 0.25;
  return g;
}

std::string PagePayload(char fill, size_t n = 4096) {
  return std::string(n, fill);
}

// ---------------------------------------------------------------------------
// Raw device semantics
// ---------------------------------------------------------------------------

TEST(SsdDeviceTest, ProgramReadEraseCycle) {
  SimClock clock;
  SsdDevice dev(SmallGeometry(), LatencyModel(), &clock);
  ASSERT_TRUE(dev.ProgramPage(0, PagePayload('a')).ok());
  std::string out;
  ASSERT_TRUE(dev.ReadPage(0, &out).ok());
  EXPECT_EQ(out, PagePayload('a'));
  ASSERT_TRUE(dev.InvalidatePage(0).ok());
  ASSERT_TRUE(dev.EraseBlock(0).ok());
  EXPECT_EQ(dev.page_state(0), PageState::kErased);
}

TEST(SsdDeviceTest, CannotProgramProgrammedPage) {
  SimClock clock;
  SsdDevice dev(SmallGeometry(), LatencyModel(), &clock);
  ASSERT_TRUE(dev.ProgramPage(3, PagePayload('x')).ok());
  EXPECT_TRUE(dev.ProgramPage(3, PagePayload('y')).IsIOError());
}

TEST(SsdDeviceTest, CannotEraseBlockWithValidPages) {
  SimClock clock;
  SsdDevice dev(SmallGeometry(), LatencyModel(), &clock);
  ASSERT_TRUE(dev.ProgramPage(0, PagePayload('x')).ok());
  EXPECT_TRUE(dev.EraseBlock(0).IsIOError());
  ASSERT_TRUE(dev.InvalidatePage(0).ok());
  EXPECT_TRUE(dev.EraseBlock(0).ok());
}

TEST(SsdDeviceTest, ShortPayloadIsZeroPadded) {
  SimClock clock;
  SsdDevice dev(SmallGeometry(), LatencyModel(), &clock);
  ASSERT_TRUE(dev.ProgramPage(0, "abc").ok());
  std::string out;
  ASSERT_TRUE(dev.ReadPage(0, &out).ok());
  EXPECT_EQ(out.substr(0, 3), "abc");
  EXPECT_EQ(out[3], '\0');
  EXPECT_EQ(out.size(), 4096u);
}

TEST(SsdDeviceTest, OversizedPayloadRejected) {
  SimClock clock;
  SsdDevice dev(SmallGeometry(), LatencyModel(), &clock);
  EXPECT_TRUE(dev.ProgramPage(0, PagePayload('x', 4097)).IsInvalidArgument());
}

TEST(SsdDeviceTest, LatencyAdvancesSimClock) {
  SimClock clock;
  LatencyModel lat;
  SsdDevice dev(SmallGeometry(), lat, &clock);
  ASSERT_TRUE(dev.ProgramPage(0, PagePayload('a')).ok());
  EXPECT_EQ(clock.NowMicros(), lat.page_program_us);
  std::string out;
  ASSERT_TRUE(dev.ReadPage(0, &out).ok());
  EXPECT_EQ(clock.NowMicros(), lat.page_program_us + lat.page_read_us);
  ASSERT_TRUE(dev.InvalidatePage(0).ok());
  ASSERT_TRUE(dev.EraseBlock(0).ok());
  EXPECT_EQ(clock.NowMicros(),
            lat.page_program_us + lat.page_read_us + lat.block_erase_us);
}

TEST(SsdDeviceTest, StatsDistinguishHostAndGc) {
  SimClock clock;
  SsdDevice dev(SmallGeometry(), LatencyModel(), &clock);
  ASSERT_TRUE(dev.ProgramPage(0, PagePayload('a'), /*is_gc=*/false).ok());
  ASSERT_TRUE(dev.ProgramPage(1, PagePayload('b'), /*is_gc=*/true).ok());
  EXPECT_EQ(dev.stats().host_pages_written, 1u);
  EXPECT_EQ(dev.stats().gc_pages_migrated, 1u);
  EXPECT_EQ(dev.stats().device_pages_written(), 2u);
  EXPECT_DOUBLE_EQ(dev.stats().write_amplification(), 2.0);
}

// ---------------------------------------------------------------------------
// FTL
// ---------------------------------------------------------------------------

TEST(FtlTest, OverwriteRedirectsAndPreservesData) {
  SimClock clock;
  FtlDevice ftl(SmallGeometry(), LatencyModel(), &clock);
  ASSERT_TRUE(ftl.Write(5, PagePayload('a')).ok());
  ASSERT_TRUE(ftl.Write(5, PagePayload('b')).ok());
  std::string out;
  ASSERT_TRUE(ftl.Read(5, &out).ok());
  EXPECT_EQ(out, PagePayload('b'));
}

TEST(FtlTest, UnmappedReadsZeros) {
  SimClock clock;
  FtlDevice ftl(SmallGeometry(), LatencyModel(), &clock);
  std::string out;
  ASSERT_TRUE(ftl.Read(9, &out).ok());
  EXPECT_EQ(out, std::string(4096, '\0'));
}

TEST(FtlTest, TrimUnmaps) {
  SimClock clock;
  FtlDevice ftl(SmallGeometry(), LatencyModel(), &clock);
  ASSERT_TRUE(ftl.Write(1, PagePayload('a')).ok());
  EXPECT_TRUE(ftl.IsMapped(1));
  ASSERT_TRUE(ftl.Trim(1).ok());
  EXPECT_FALSE(ftl.IsMapped(1));
}

TEST(FtlTest, OverwriteChurnTriggersDeviceGcAndAmplification) {
  SimClock clock;
  FtlDevice ftl(SmallGeometry(), LatencyModel(), &clock);
  Random rnd(99);
  // Fill 80% of logical space, then churn overwrites: device GC must run and
  // migrate pages, so device writes exceed host writes.
  const uint64_t working_set = ftl.logical_pages() * 8 / 10;
  for (uint64_t lpa = 0; lpa < working_set; ++lpa) {
    ASSERT_TRUE(ftl.Write(lpa, PagePayload('a')).ok());
  }
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(ftl.Write(rnd.Uniform(working_set), PagePayload('b')).ok());
  }
  EXPECT_GT(ftl.gc_runs(), 0u);
  EXPECT_GT(ftl.stats().gc_pages_migrated, 0u);
  EXPECT_GT(ftl.stats().write_amplification(), 1.0);
  // Data integrity under GC migration.
  std::string out;
  ASSERT_TRUE(ftl.Read(0, &out).ok());
  EXPECT_TRUE(out == PagePayload('a') || out == PagePayload('b'));
}

TEST(FtlTest, SequentialFillWithinLogicalCapacitySucceeds) {
  SimClock clock;
  FtlDevice ftl(SmallGeometry(), LatencyModel(), &clock);
  for (uint64_t lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    ASSERT_TRUE(ftl.Write(lpa, PagePayload('x')).ok()) << lpa;
  }
  // With no invalid pages beyond OP the device is near-full but functional:
  // overwrites must still succeed (they create invalid pages first).
  for (uint64_t lpa = 0; lpa < 100; ++lpa) {
    ASSERT_TRUE(ftl.Write(lpa, PagePayload('y')).ok()) << lpa;
  }
}

// ---------------------------------------------------------------------------
// Native interface
// ---------------------------------------------------------------------------

TEST(NativeTest, AppendReadReleaseCycle) {
  SimClock clock;
  NativeSsd native(SmallGeometry(), LatencyModel(), &clock);
  Result<uint32_t> block = native.AllocateBlock();
  ASSERT_TRUE(block.ok());
  for (int i = 0; i < 8; ++i) {
    Result<uint32_t> page = native.AppendPage(*block, PagePayload('a' + i));
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, static_cast<uint32_t>(i));
  }
  EXPECT_TRUE(native.AppendPage(*block, PagePayload('z')).status().IsNoSpace());
  std::string out;
  ASSERT_TRUE(native.ReadPage(*block, 3, &out).ok());
  EXPECT_EQ(out, PagePayload('d'));
  ASSERT_TRUE(native.ReleaseBlock(*block).ok());
  EXPECT_FALSE(native.IsOwned(*block));
}

TEST(NativeTest, NoDeviceGcEver) {
  SimClock clock;
  NativeSsd native(SmallGeometry(), LatencyModel(), &clock);
  // Allocate, fill, and release every block twice over: writes stay 1:1.
  for (int round = 0; round < 2; ++round) {
    std::vector<uint32_t> blocks;
    for (uint32_t i = 0; i < native.geometry().num_blocks; ++i) {
      Result<uint32_t> b = native.AllocateBlock();
      ASSERT_TRUE(b.ok());
      for (uint32_t p = 0; p < native.geometry().pages_per_block; ++p) {
        ASSERT_TRUE(native.AppendPage(*b, PagePayload('r')).ok());
      }
      blocks.push_back(*b);
    }
    EXPECT_TRUE(native.AllocateBlock().status().IsNoSpace());
    for (uint32_t b : blocks) ASSERT_TRUE(native.ReleaseBlock(b).ok());
  }
  EXPECT_EQ(native.stats().gc_pages_migrated, 0u);
  EXPECT_DOUBLE_EQ(native.stats().write_amplification(), 1.0);
}

TEST(NativeTest, ReadingUnwrittenPageRejected) {
  SimClock clock;
  NativeSsd native(SmallGeometry(), LatencyModel(), &clock);
  Result<uint32_t> block = native.AllocateBlock();
  ASSERT_TRUE(block.ok());
  std::string out;
  EXPECT_TRUE(native.ReadPage(*block, 0, &out).IsInvalidArgument());
}

TEST(NativeTest, UnownedBlockOperationsRejected) {
  SimClock clock;
  NativeSsd native(SmallGeometry(), LatencyModel(), &clock);
  EXPECT_TRUE(native.AppendPage(7, "x").status().IsInvalidArgument());
  EXPECT_TRUE(native.ReleaseBlock(7).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// SsdEnv (both interface modes)
// ---------------------------------------------------------------------------

class EnvTest : public ::testing::TestWithParam<InterfaceMode> {
 protected:
  EnvTest()
      : env_(NewSsdEnv(GetParam(), SmallGeometry(), LatencyModel(), &clock_)) {}

  SimClock clock_;
  std::unique_ptr<SsdEnv> env_;
};

TEST_P(EnvTest, WriteCloseReadRoundTrip) {
  auto file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  std::string content;
  Random rnd(1);
  for (int i = 0; i < 20; ++i) {
    const std::string chunk = rnd.NextString(1000 + i * 37);
    content += chunk;
    ASSERT_TRUE((*file)->Append(chunk).ok());
  }
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*env_->GetFileSize("f"), content.size());

  auto reader = env_->NewRandomAccessFile("f");
  ASSERT_TRUE(reader.ok());
  std::string out;
  ASSERT_TRUE((*reader)->Read(0, content.size(), &out).ok());
  EXPECT_EQ(out, content);
  // Unaligned interior read.
  ASSERT_TRUE((*reader)->Read(4097, 8192, &out).ok());
  EXPECT_EQ(out, content.substr(4097, 8192));
  // Read clamped at EOF.
  ASSERT_TRUE((*reader)->Read(content.size() - 10, 100, &out).ok());
  EXPECT_EQ(out, content.substr(content.size() - 10));
}

TEST_P(EnvTest, PersistedSizeTracksFullPages) {
  auto file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(5000, 'x')).ok());
  EXPECT_EQ((*file)->Size(), 5000u);
  EXPECT_EQ((*file)->PersistedSize(), 4096u);  // One full page through.
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ((*file)->PersistedSize(), 5000u);
}

TEST_P(EnvTest, DeleteAndExistence) {
  auto file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE(env_->FileExists("f"));
  EXPECT_GT(env_->TotalFileBytes(), 0u);
  ASSERT_TRUE(env_->DeleteFile("f").ok());
  EXPECT_FALSE(env_->FileExists("f"));
  EXPECT_EQ(env_->TotalFileBytes(), 0u);
  EXPECT_TRUE(env_->DeleteFile("f").IsNotFound());
  EXPECT_TRUE(env_->NewRandomAccessFile("f").status().IsNotFound());
}

TEST_P(EnvTest, DeleteOpenFileRejected) {
  auto file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(env_->DeleteFile("f").IsBusy());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE(env_->DeleteFile("f").ok());
}

TEST_P(EnvTest, RenameReplacesTarget) {
  for (const char* name : {"a", "b"}) {
    auto f = env_->NewWritableFile(name);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(name).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  ASSERT_TRUE(env_->RenameFile("a", "b").ok());
  EXPECT_FALSE(env_->FileExists("a"));
  auto reader = env_->NewRandomAccessFile("b");
  ASSERT_TRUE(reader.ok());
  std::string out;
  ASSERT_TRUE((*reader)->Read(0, 1, &out).ok());
  EXPECT_EQ(out, "a");
}

TEST_P(EnvTest, ListFilesSorted) {
  for (const char* name : {"c", "a", "b"}) {
    auto f = env_->NewWritableFile(name);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  const std::vector<std::string> files = env_->ListFiles();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "a");
  EXPECT_EQ(files[2], "c");
}

TEST_P(EnvTest, DuplicateCreateRejected) {
  auto f = env_->NewWritableFile("f");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(env_->NewWritableFile("f").status().IsInvalidArgument());
}

TEST_P(EnvTest, HostBytesAppendedAccounted) {
  auto f = env_->NewWritableFile("f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(std::string(1234, 'x')).ok());
  EXPECT_EQ(env_->host_bytes_appended(), 1234u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, EnvTest,
                         ::testing::Values(InterfaceMode::kPageMappedFtl,
                                           InterfaceMode::kNativeBlock),
                         [](const auto& info) {
                           return std::string(InterfaceModeName(info.param))
                                      .find("native") != std::string::npos
                                      ? "Native"
                                      : "Ftl";
                         });

TEST_P(EnvTest, CapacityReflectsInterfaceMode) {
  const uint64_t physical = env_->geometry().physical_bytes();
  if (GetParam() == InterfaceMode::kNativeBlock) {
    EXPECT_EQ(env_->CapacityBytes(), physical);
  } else {
    // The FTL reserves over-provisioning headroom.
    EXPECT_LT(env_->CapacityBytes(), physical);
    EXPECT_GT(env_->CapacityBytes(), physical / 2);
  }
}

TEST_P(EnvTest, FillToCapacityReportsNoSpace) {
  // Writing more than the capacity must fail with NoSpace, not corrupt.
  auto file = env_->NewWritableFile("big");
  ASSERT_TRUE(file.ok());
  const std::string chunk(1 << 20, 'x');
  Status s;
  uint64_t written = 0;
  while ((s = (*file)->Append(chunk)).ok()) {
    written += chunk.size();
    ASSERT_LT(written, env_->geometry().physical_bytes() * 2);
  }
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
  EXPECT_GT(written, env_->CapacityBytes() / 2);
}

TEST_P(EnvTest, SimulatedCrashDropsWriterOwnership) {
  auto file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(8192, 'x')).ok());
  EXPECT_TRUE(env_->DeleteFile("f").IsBusy());
  env_->SimulateCrashForTesting();
  EXPECT_TRUE(env_->DeleteFile("f").ok());
}

// The hardware-level contrast the paper draws: deleting files on the native
// interface erases blocks without migrating a single page, while the
// page-mapped FTL eventually pays device GC for the same workload.
TEST(EnvContrastTest, NativeDeleteAvoidsDeviceGc) {
  Geometry g = SmallGeometry();
  LatencyModel lat;

  auto churn = [&](SsdEnv* env) {
    Random rnd(5);
    // Write and delete files repeatedly to force space turnover well beyond
    // the device size.
    for (int i = 0; i < 60; ++i) {
      const std::string name = "f" + std::to_string(i);
      auto f = env->NewWritableFile(name);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE((*f)->Append(rnd.NextString(20 * 4096)).ok());
      ASSERT_TRUE((*f)->Close().ok());
      if (i >= 4) {
        ASSERT_TRUE(env->DeleteFile("f" + std::to_string(i - 4)).ok());
      }
    }
  };

  SimClock c1, c2;
  auto ftl_env = NewSsdEnv(InterfaceMode::kPageMappedFtl, g, lat, &c1);
  auto native_env = NewSsdEnv(InterfaceMode::kNativeBlock, g, lat, &c2);
  churn(ftl_env.get());
  churn(native_env.get());

  EXPECT_EQ(native_env->stats().gc_pages_migrated, 0u);
  EXPECT_DOUBLE_EQ(native_env->stats().write_amplification(), 1.0);
  // Identical host workload on the conventional interface migrates pages.
  EXPECT_GE(ftl_env->stats().write_amplification(), 1.0);
  EXPECT_EQ(ftl_env->stats().host_pages_written,
            native_env->stats().host_pages_written);
}

}  // namespace
}  // namespace directload::ssd
