#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 2048;  // 64 MiB device.
  return g;
}

class QinDbTest : public ::testing::Test {
 protected:
  QinDbTest() { ResetEnv(); }

  void ResetEnv() {
    clock_.Reset();
    env_ = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                     ssd::LatencyModel(), &clock_);
  }

  std::unique_ptr<QinDb> OpenDb(QinDbOptions options = {}) {
    if (options.num_shards == 0) options.num_shards = 1;
    if (options.aof.segment_bytes == 64ull << 20) {
      options.aof.segment_bytes = 128 << 10;  // Small segments for tests.
    }
    auto db = QinDb::Open(env_.get(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

TEST_F(QinDbTest, PutGetExactVersion) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("url1", 1, "value-v1").ok());
  ASSERT_TRUE(db->Put("url1", 2, "value-v2").ok());
  EXPECT_EQ(*db->Get("url1", 1), "value-v1");
  EXPECT_EQ(*db->Get("url1", 2), "value-v2");
  EXPECT_TRUE(db->Get("url1", 3).status().IsNotFound());
  EXPECT_TRUE(db->Get("url2", 1).status().IsNotFound());
}

TEST_F(QinDbTest, EmptyKeyRejected) {
  auto db = OpenDb();
  EXPECT_TRUE(db->Put("", 1, "v").IsInvalidArgument());
}

TEST_F(QinDbTest, LargeValuesRoundTrip) {
  auto db = OpenDb();
  Random rnd(17);
  const std::string value = rnd.NextString(20 << 10);  // Paper's 20 KB values.
  ASSERT_TRUE(db->Put("url", 1, value).ok());
  EXPECT_EQ(*db->Get("url", 1), value);
}

TEST_F(QinDbTest, DedupGetTracebacksToOlderValue) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("url", 1, "original").ok());
  // Version 2 arrived deduplicated: the value was unchanged upstream.
  ASSERT_TRUE(db->Put("url", 2, Slice(), /*dedup=*/true).ok());
  EXPECT_EQ(*db->Get("url", 2), "original");
  EXPECT_EQ(db->stats().traceback_gets, 1u);
}

TEST_F(QinDbTest, DedupChainsTraceToNearestValue) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("url", 1, "v1").ok());
  ASSERT_TRUE(db->Put("url", 2, Slice(), true).ok());
  ASSERT_TRUE(db->Put("url", 3, "v3").ok());
  ASSERT_TRUE(db->Put("url", 4, Slice(), true).ok());
  ASSERT_TRUE(db->Put("url", 5, Slice(), true).ok());
  EXPECT_EQ(*db->Get("url", 2), "v1");
  EXPECT_EQ(*db->Get("url", 4), "v3");
  EXPECT_EQ(*db->Get("url", 5), "v3");
  EXPECT_EQ(*db->Get("url", 3), "v3");
}

TEST_F(QinDbTest, DanglingDedupReportsCorruption) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("url", 1, Slice(), true).ok());
  EXPECT_TRUE(db->Get("url", 1).status().IsCorruption());
}

TEST_F(QinDbTest, GetLatestSkipsDeletedVersions) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("url", 1, "v1").ok());
  ASSERT_TRUE(db->Put("url", 2, "v2").ok());
  EXPECT_EQ(*db->GetLatest("url"), "v2");
  ASSERT_TRUE(db->Del("url", 2).ok());
  EXPECT_EQ(*db->GetLatest("url"), "v1");
  ASSERT_TRUE(db->Del("url", 1).ok());
  EXPECT_TRUE(db->GetLatest("url").status().IsNotFound());
}

TEST_F(QinDbTest, DelHidesExactVersion) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("url", 1, "v1").ok());
  ASSERT_TRUE(db->Del("url", 1).ok());
  EXPECT_TRUE(db->Get("url", 1).status().IsNotFound());
  EXPECT_TRUE(db->Del("url", 9).IsNotFound());
  // Idempotent.
  EXPECT_TRUE(db->Del("url", 1).ok());
  EXPECT_EQ(db->stats().dels, 1u);
}

TEST_F(QinDbTest, RePutSupersedesAndKillsOldBytes) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("url", 1, std::string(5000, 'a')).ok());
  const uint64_t live_before = db->aof().LiveBytes();
  ASSERT_TRUE(db->Put("url", 1, std::string(5000, 'b')).ok());
  EXPECT_EQ(*db->Get("url", 1), std::string(5000, 'b'));
  // Live bytes unchanged (old record dead, new record live).
  EXPECT_EQ(db->aof().LiveBytes(), live_before);
}

TEST_F(QinDbTest, DropVersionFlagsEveryPair) {
  auto db = OpenDb();
  for (int i = 0; i < 10; ++i) {
    const std::string key = "url" + std::to_string(i);
    ASSERT_TRUE(db->Put(key, 1, "old").ok());
    ASSERT_TRUE(db->Put(key, 2, "new").ok());
  }
  Result<uint64_t> n = db->DropVersion(1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
  for (int i = 0; i < 10; ++i) {
    const std::string key = "url" + std::to_string(i);
    EXPECT_TRUE(db->Get(key, 1).status().IsNotFound());
    EXPECT_EQ(*db->Get(key, 2), "new");
  }
}

TEST_F(QinDbTest, VersionCountsTrackLivePairs) {
  auto db = OpenDb();
  for (int i = 0; i < 10; ++i) {
    const std::string key = "url" + std::to_string(i);
    ASSERT_TRUE(db->Put(key, 1, "a").ok());
    if (i < 4) {
      ASSERT_TRUE(db->Put(key, 2, Slice(), true).ok());
    }
  }
  std::map<uint64_t, uint64_t> counts = db->VersionCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[1], 10u);
  EXPECT_EQ(counts[2], 4u);
  ASSERT_TRUE(db->DropVersion(1).ok());
  counts = db->VersionCounts();
  EXPECT_EQ(counts.count(1), 0u);
  EXPECT_EQ(counts[2], 4u);
}

// ---------------------------------------------------------------------------
// Lazy GC
// ---------------------------------------------------------------------------

TEST_F(QinDbTest, GcReclaimsSpaceAndPreservesLiveData) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 64 << 10;
  options.auto_gc = false;
  auto db = OpenDb(options);
  Random rnd(23);
  std::map<std::string, std::string> live;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "url" + std::to_string(i);
    const std::string value = rnd.NextString(2000);
    ASSERT_TRUE(db->Put(key, 1, value).ok());
    live[key] = value;
  }
  // Delete three quarters of the keys: many segments fall under 25%.
  for (int i = 0; i < 200; ++i) {
    if (i % 4 == 0) continue;
    const std::string key = "url" + std::to_string(i);
    ASSERT_TRUE(db->Del(key, 1).ok());
    live.erase(key);
  }
  const uint64_t disk_before = db->DiskBytes();
  ASSERT_TRUE(db->ForceGc().ok());
  EXPECT_LT(db->DiskBytes(), disk_before);
  EXPECT_GT(db->gc_stats().segments_reclaimed, 0u);
  for (const auto& [key, value] : live) {
    EXPECT_EQ(*db->Get(key, 1), value) << key;
  }
  // Deleted keys stay deleted and their index items were purged.
  EXPECT_TRUE(db->Get("url1", 1).status().IsNotFound());
}

TEST_F(QinDbTest, GcPreservesDeletedReferents) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 32 << 10;
  options.auto_gc = false;
  auto db = OpenDb(options);
  // Version 1 carries the value; versions 2..3 are deduplicated.
  ASSERT_TRUE(db->Put("url", 1, std::string(3000, 'x')).ok());
  ASSERT_TRUE(db->Put("url", 2, Slice(), true).ok());
  ASSERT_TRUE(db->Put("url", 3, Slice(), true).ok());
  // Fill the segment with churn so it seals and becomes a victim.
  for (int i = 0; i < 50; ++i) {
    const std::string key = "filler" + std::to_string(i);
    ASSERT_TRUE(db->Put(key, 1, std::string(3000, 'f')).ok());
    ASSERT_TRUE(db->Del(key, 1).ok());
  }
  // Delete version 1: its record is dead-but-referenced (versions 2,3 trace
  // back to it).
  ASSERT_TRUE(db->Del("url", 1).ok());
  ASSERT_TRUE(db->ForceGc().ok());
  EXPECT_GT(db->gc_stats().segments_reclaimed, 0u);
  // The deleted version is gone, but the referents still resolve.
  EXPECT_TRUE(db->Get("url", 1).status().IsNotFound());
  EXPECT_EQ(*db->Get("url", 2), std::string(3000, 'x'));
  EXPECT_EQ(*db->Get("url", 3), std::string(3000, 'x'));
}

TEST_F(QinDbTest, GcDropsUnreferencedDeletedRecords) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 32 << 10;
  options.auto_gc = false;
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Put("a", 1, std::string(3000, 'a')).ok());
  ASSERT_TRUE(db->Put("a", 2, std::string(3000, 'b')).ok());  // Own value.
  // Enough fillers to seal the segment holding (a,1).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        db->Put("filler" + std::to_string(i), 1, std::string(3000, 'f')).ok());
  }
  ASSERT_TRUE(db->Del("a", 1).ok());  // Not referenced: v2 has its own value.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db->Del("filler" + std::to_string(i), 1).ok());
  }
  const size_t live_entries_before = db->memtable().live_count();
  ASSERT_TRUE(db->ForceGc().ok());
  EXPECT_GT(db->gc_stats().segments_reclaimed, 0u);
  // The (a,1) item was physically purged from the skip list (its segment was
  // sealed and collected), and live data survived relocation.
  EXPECT_EQ(db->memtable().FindExact("a", 1), nullptr);
  EXPECT_LT(db->memtable().live_count(), live_entries_before);
  EXPECT_TRUE(db->Get("a", 1).status().IsNotFound());
  EXPECT_EQ(*db->Get("a", 2), std::string(3000, 'b'));
}

TEST_F(QinDbTest, GcDeferredWhileReadsInFlight) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 32 << 10;
  auto db = OpenDb(options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        db->Put("k" + std::to_string(i), 1, std::string(3000, 'v')).ok());
  }
  {
    QinDb::ReadGuard guard(db.get());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db->Del("k" + std::to_string(i), 1).ok());
    }
    EXPECT_GT(db->stats().gc_deferrals, 0u);
    EXPECT_EQ(db->gc_stats().segments_reclaimed, 0u);
  }
  // Guard released: the next write boundary may collect.
  ASSERT_TRUE(db->MaybeGc().ok());
  EXPECT_GT(db->gc_stats().segments_reclaimed, 0u);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

TEST_F(QinDbTest, RecoverFromFullScanRestoresData) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 64 << 10;
  std::map<std::string, std::string> expect;
  {
    auto db = OpenDb(options);
    Random rnd(31);
    for (int i = 0; i < 100; ++i) {
      const std::string key = "url" + std::to_string(i);
      const std::string value = rnd.NextString(1500);
      ASSERT_TRUE(db->Put(key, 1, value).ok());
      expect[key] = value;
    }
    for (int i = 0; i < 100; i += 3) {
      const std::string key = "url" + std::to_string(i);
      ASSERT_TRUE(db->Put(key, 2, Slice(), true).ok());
    }
    // Graceful shutdown without a checkpoint: recovery must scan the AOFs.
  }
  auto db = OpenDb(options);
  for (const auto& [key, value] : expect) {
    EXPECT_EQ(*db->Get(key, 1), value) << key;
  }
  for (int i = 0; i < 100; i += 3) {
    const std::string key = "url" + std::to_string(i);
    EXPECT_EQ(*db->Get(key, 2), expect[key]) << key;
  }
  EXPECT_TRUE(db->Get("url1", 2).status().IsNotFound());
}

TEST_F(QinDbTest, RecoveryKeepsNewestDuplicate) {
  QinDbOptions options;
  options.num_shards = 1;
  {
    auto db = OpenDb(options);
    ASSERT_TRUE(db->Put("k", 1, "first").ok());
    ASSERT_TRUE(db->Put("k", 1, "second").ok());
  }
  auto db = OpenDb(options);
  EXPECT_EQ(*db->Get("k", 1), "second");
}

TEST_F(QinDbTest, LoggedDeletesSurviveRestart) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.log_deletes = true;
  {
    auto db = OpenDb(options);
    ASSERT_TRUE(db->Put("k", 1, "v").ok());
    ASSERT_TRUE(db->Del("k", 1).ok());
  }
  auto db = OpenDb(options);
  EXPECT_TRUE(db->Get("k", 1).status().IsNotFound());
}

TEST_F(QinDbTest, UnloggedDeletesAreLostWithoutCheckpoint) {
  // Documents the paper's tradeoff: DEL only touches memory.
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.log_deletes = false;
  {
    auto db = OpenDb(options);
    ASSERT_TRUE(db->Put("k", 1, "v").ok());
    ASSERT_TRUE(db->Del("k", 1).ok());
  }
  auto db = OpenDb(options);
  EXPECT_EQ(*db->Get("k", 1), "v");
}

TEST_F(QinDbTest, CheckpointSpeedsUpRecoveryAndPreservesState) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 64 << 10;
  std::map<std::string, std::string> expect;
  {
    auto db = OpenDb(options);
    Random rnd(37);
    for (int i = 0; i < 150; ++i) {
      const std::string key = "url" + std::to_string(i);
      const std::string value = rnd.NextString(1500);
      ASSERT_TRUE(db->Put(key, 1, value).ok());
      expect[key] = value;
    }
    ASSERT_TRUE(db->Del("url0", 1).ok());
    expect.erase("url0");
    ASSERT_TRUE(db->Checkpoint().ok());
    // Post-checkpoint writes land in newer segments and are re-scanned.
    ASSERT_TRUE(db->Put("late", 1, "late-value").ok());
    expect["late"] = "late-value";
  }
  const uint64_t reads_before_ckpt_recovery = env_->stats().host_pages_read;
  {
    auto db = OpenDb(options);
    const uint64_t ckpt_recovery_reads =
        env_->stats().host_pages_read - reads_before_ckpt_recovery;
    for (const auto& [key, value] : expect) {
      EXPECT_EQ(*db->Get(key, 1), value) << key;
    }
    // The checkpointed delete survived even without logged deletes.
    EXPECT_TRUE(db->Get("url0", 1).status().IsNotFound());

    // Wipe the checkpoint and compare recovery I/O: the full scan must read
    // much more.
    ASSERT_TRUE(env_->DeleteFile("checkpoint.dat").ok());
    const uint64_t before_full = env_->stats().host_pages_read;
    auto db2 = OpenDb(options);
    const uint64_t full_scan_reads =
        env_->stats().host_pages_read - before_full;
    EXPECT_GT(full_scan_reads, ckpt_recovery_reads * 3);
  }
}

TEST_F(QinDbTest, GcInvalidatesCheckpoint) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 32 << 10;
  options.auto_gc = false;
  auto db = OpenDb(options);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        db->Put("k" + std::to_string(i), 1, std::string(2000, 'v')).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_TRUE(env_->FileExists("checkpoint.dat"));
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db->Del("k" + std::to_string(i), 1).ok());
  }
  ASSERT_TRUE(db->ForceGc().ok());
  // Relocations made the checkpoint stale; it must be gone.
  EXPECT_FALSE(env_->FileExists("checkpoint.dat"));
}

// ---------------------------------------------------------------------------
// Property test: random workload against a reference model
// ---------------------------------------------------------------------------

struct ModelValue {
  std::string value;
  bool dedup = false;
  bool deleted = false;
};

class QinDbPropertyTest : public QinDbTest,
                          public ::testing::WithParamInterface<uint64_t> {};

// Mirrors the production write pattern the paper describes: per key,
// versions arrive in increasing order (some deduplicated against the
// previous version), and deletions always target the oldest live version —
// the deletion thread dropping the oldest of the retained versions. Under
// this sequencing the engine's purge/referent semantics are exactly
// representable by the model below.
TEST_P(QinDbPropertyTest, RandomVersionedWorkloadMatchesModel) {
  QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 64 << 10;
  auto db = OpenDb(options);
  Random rnd(GetParam());

  // model[key][version]; versions of a key are contiguous from first kept.
  std::map<std::string, std::map<uint64_t, ModelValue>> model;
  std::map<std::string, uint64_t> next_version;

  auto resolve = [&](const std::string& key,
                     uint64_t version) -> std::optional<std::string> {
    auto kit = model.find(key);
    if (kit == model.end()) return std::nullopt;
    auto vit = kit->second.find(version);
    if (vit == kit->second.end()) return std::nullopt;
    if (!vit->second.dedup) return vit->second.value;
    // Traceback: newest older version with a concrete value (deleted
    // versions still carry bytes; the engine keeps them as referents).
    for (auto it = std::make_reverse_iterator(vit); it != kit->second.rend();
         ++it) {
      if (!it->second.dedup) return it->second.value;
    }
    return std::nullopt;
  };

  for (int step = 0; step < 4000; ++step) {
    const std::string key = "key" + std::to_string(rnd.Uniform(60));
    const uint64_t dice = rnd.Uniform(100);
    auto& versions = model[key];
    if (dice < 55) {  // PUT of the next version, maybe deduplicated.
      const uint64_t version = ++next_version[key];
      const bool newest_alive =
          !versions.empty() && !versions.rbegin()->second.deleted;
      const bool want_dedup = rnd.Bernoulli(0.4);
      if (want_dedup && newest_alive) {
        ASSERT_TRUE(db->Put(key, version, Slice(), true).ok());
        versions[version] = ModelValue{"", true, false};
      } else {
        const std::string value = rnd.NextString(20 + rnd.Uniform(400));
        ASSERT_TRUE(db->Put(key, version, value).ok());
        versions[version] = ModelValue{value, false, false};
      }
    } else if (dice < 75) {  // DEL of the oldest live version.
      auto oldest = versions.begin();
      while (oldest != versions.end() && oldest->second.deleted) ++oldest;
      if (oldest != versions.end()) {
        ASSERT_TRUE(db->Del(key, oldest->first).ok());
        oldest->second.deleted = true;
      } else {
        EXPECT_TRUE(db->Del(key, next_version[key] + 1).IsNotFound());
      }
    } else {  // GET of a random known version.
      if (versions.empty()) {
        EXPECT_TRUE(db->Get(key, 1).status().IsNotFound());
        continue;
      }
      auto vit = versions.begin();
      std::advance(vit, rnd.Uniform(versions.size()));
      Result<std::string> got = db->Get(key, vit->first);
      if (vit->second.deleted) {
        EXPECT_TRUE(got.status().IsNotFound()) << key << "/" << vit->first;
      } else {
        std::optional<std::string> want = resolve(key, vit->first);
        ASSERT_TRUE(want.has_value());
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(*got, *want);
      }
    }
  }

  // Sweep-check every key/version at the end, then again after a forced GC.
  auto check_all = [&](QinDb* engine) {
    for (const auto& [key, versions] : model) {
      for (const auto& [version, mv] : versions) {
        Result<std::string> got = engine->Get(key, version);
        if (mv.deleted) {
          EXPECT_TRUE(got.status().IsNotFound()) << key << "/" << version;
          continue;
        }
        std::optional<std::string> want = resolve(key, version);
        ASSERT_TRUE(want.has_value());
        ASSERT_TRUE(got.ok())
            << key << "/" << version << ": " << got.status().ToString();
        EXPECT_EQ(*got, *want);
      }
    }
  };
  check_all(db.get());
  ASSERT_TRUE(db->ForceGc().ok());
  check_all(db.get());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QinDbPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace directload::qindb
