#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aof/aof_manager.h"
#include "aof/record.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "ssd/env.h"

namespace directload::aof {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 512;  // 16 MiB device.
  return g;
}

class AofTest : public ::testing::Test {
 protected:
  AofTest()
      : env_(NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock_)) {}

  std::unique_ptr<AofManager> OpenManager(uint64_t segment_bytes = 256 << 10) {
    AofOptions options;
    options.segment_bytes = segment_bytes;
    auto mgr = AofManager::Open(env_.get(), options);
    EXPECT_TRUE(mgr.ok()) << mgr.status().ToString();
    return std::move(mgr).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

// ---------------------------------------------------------------------------
// Record format
// ---------------------------------------------------------------------------

TEST(RecordTest, EncodeDecodeRoundTrip) {
  std::string buf;
  EncodeRecord("the-key", 42, kFlagDedup, "the-value", &buf);
  EXPECT_EQ(buf.size(), RecordExtent(7, 9));
  RecordView view;
  ASSERT_TRUE(DecodeRecord(buf, &view).ok());
  EXPECT_EQ(view.key.ToString(), "the-key");
  EXPECT_EQ(view.value.ToString(), "the-value");
  EXPECT_EQ(view.header.version, 42u);
  EXPECT_TRUE(view.is_dedup());
  EXPECT_FALSE(view.is_tombstone());
}

TEST(RecordTest, EmptyValue) {
  std::string buf;
  EncodeRecord("k", 1, kFlagNone, Slice(), &buf);
  RecordView view;
  ASSERT_TRUE(DecodeRecord(buf, &view).ok());
  EXPECT_TRUE(view.value.empty());
}

TEST(RecordTest, CorruptionDetected) {
  std::string buf;
  EncodeRecord("key", 7, kFlagNone, "value", &buf);
  for (size_t i = 0; i < buf.size(); i += 3) {
    std::string mutated = buf;
    mutated[i] ^= 0x40;
    RecordView view;
    EXPECT_TRUE(DecodeRecord(mutated, &view).IsCorruption()) << "byte " << i;
  }
}

TEST(RecordTest, TruncationDetected) {
  std::string buf;
  EncodeRecord("key", 7, kFlagNone, "value", &buf);
  RecordView view;
  EXPECT_TRUE(DecodeRecord(Slice(buf.data(), buf.size() - 1), &view)
                  .IsCorruption());
  EXPECT_TRUE(DecodeRecord(Slice(buf.data(), 5), &view).IsCorruption());
}

TEST(RecordTest, AddressPacking) {
  RecordAddress a{123, 456789};
  EXPECT_EQ(RecordAddress::Unpack(a.Pack()), a);
  RecordAddress max{UINT32_MAX, UINT32_MAX};
  EXPECT_EQ(RecordAddress::Unpack(max.Pack()), max);
}

// ---------------------------------------------------------------------------
// Manager: append / read
// ---------------------------------------------------------------------------

TEST_F(AofTest, AppendAndReadBack) {
  auto mgr = OpenManager();
  Result<RecordAddress> addr = mgr->AppendRecord("k1", 1, kFlagNone, "v1");
  ASSERT_TRUE(addr.ok());
  RecordView view;
  // Immediately readable, even though the page has not flushed yet.
  ASSERT_TRUE(mgr->ReadRecord(*addr, 0, &view).ok());
  EXPECT_EQ(view.key.ToString(), "k1");
  EXPECT_EQ(view.value.ToString(), "v1");
  // With an extent hint as the engine uses it.
  ASSERT_TRUE(mgr->ReadRecord(*addr, RecordExtent(2, 2), &view).ok());
  EXPECT_EQ(view.value.ToString(), "v1");
}

TEST_F(AofTest, ReadStraddlesPersistedBoundary) {
  auto mgr = OpenManager();
  Random rnd(3);
  // First record flushes a few pages; second sits partially in the tail.
  const std::string v1 = rnd.NextString(4096 * 2 + 100);
  const std::string v2 = rnd.NextString(300);
  Result<RecordAddress> a1 = mgr->AppendRecord("a", 1, kFlagNone, v1);
  Result<RecordAddress> a2 = mgr->AppendRecord("b", 1, kFlagNone, v2);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  RecordView view;
  ASSERT_TRUE(mgr->ReadRecord(*a2, 0, &view).ok());
  EXPECT_EQ(view.value.ToString(), v2);
  ASSERT_TRUE(mgr->ReadRecord(*a1, 0, &view).ok());
  EXPECT_EQ(view.value.ToString(), v1);
}

TEST_F(AofTest, SegmentsRollAtCapacity) {
  auto mgr = OpenManager(/*segment_bytes=*/64 << 10);
  Random rnd(4);
  std::vector<std::pair<RecordAddress, std::string>> written;
  for (int i = 0; i < 40; ++i) {
    const std::string value = rnd.NextString(4000);
    Result<RecordAddress> addr =
        mgr->AppendRecord("key" + std::to_string(i), 1, kFlagNone, value);
    ASSERT_TRUE(addr.ok());
    written.emplace_back(*addr, value);
  }
  EXPECT_GT(mgr->segment_count(), 2u);
  for (const auto& [addr, value] : written) {
    RecordView view;
    ASSERT_TRUE(mgr->ReadRecord(addr, 0, &view).ok());
    EXPECT_EQ(view.value.ToString(), value);
  }
}

TEST_F(AofTest, OversizedRecordRejected) {
  auto mgr = OpenManager(/*segment_bytes=*/4096);
  const std::string big(8192, 'x');
  EXPECT_TRUE(
      mgr->AppendRecord("k", 1, kFlagNone, big).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Occupancy and GC victims
// ---------------------------------------------------------------------------

TEST_F(AofTest, OccupancyTracksDeadBytes) {
  auto mgr = OpenManager(/*segment_bytes=*/64 << 10);
  Result<RecordAddress> addr = mgr->AppendRecord("k", 1, kFlagNone,
                                                 std::string(1000, 'v'));
  ASSERT_TRUE(addr.ok());
  const double before = mgr->Occupancy(addr->segment_id);
  EXPECT_GT(before, 0.0);
  mgr->MarkDead(*addr, RecordExtent(1, 1000));
  EXPECT_LT(mgr->Occupancy(addr->segment_id), before);
  EXPECT_EQ(mgr->Occupancy(addr->segment_id), 0.0);
}

TEST_F(AofTest, AppendManyMidBatchFailureRollsBackOccupancy) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoint sites not compiled in (DIRECTLOAD_FAILPOINTS)";
  }
  // 8 KiB segments with ~3 KiB records: the first two ops fill segment 0 as
  // one run, then the roll to segment 1 hits an armed seal failure. The
  // first run is durably on device, but the caller applies nothing from a
  // failed AppendMany — its bytes must not stay counted live.
  auto mgr = OpenManager(/*segment_bytes=*/8 << 10);
  const std::string value(3 << 10, 'v');
  std::vector<std::string> keys;
  std::vector<AofManager::AppendOp> ops;
  for (int i = 0; i < 4; ++i) keys.push_back("key-" + std::to_string(i));
  for (int i = 0; i < 4; ++i) {
    AofManager::AppendOp op;
    op.key = keys[i];
    op.version = static_cast<uint64_t>(i + 1);
    op.value = value;
    ops.push_back(op);
  }
  auto& reg = failpoint::Registry::Instance();
  ASSERT_TRUE(reg.Activate("aof_seal_before_close", "1*return(io)").ok());
  std::vector<RecordAddress> addresses;
  Status s = mgr->AppendMany(ops.data(), ops.size(), &addresses);
  reg.DeactivateAll();
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(addresses.empty());

  // Segment 0 still accounts the durable record bytes, but none are live:
  // occupancy reflects only records the caller actually indexed.
  auto metas = mgr->SegmentMetas();
  ASSERT_EQ(metas.count(0), 1u);
  EXPECT_GT(metas[0].total_bytes, 0u);
  EXPECT_EQ(metas[0].live_bytes, 0u);
  EXPECT_EQ(mgr->LiveBytes(), 0u);
  EXPECT_EQ(mgr->Occupancy(0), 0.0);

  // The manager stays usable: a later append succeeds and counts live.
  ASSERT_TRUE(mgr->AppendRecord("after", 9, kFlagNone, "v").ok());
  EXPECT_GT(mgr->LiveBytes(), 0u);
}

TEST_F(AofTest, VictimsAreSealedLowOccupancySegments) {
  auto mgr = OpenManager(/*segment_bytes=*/32 << 10);
  std::vector<RecordAddress> addrs;
  for (int i = 0; i < 30; ++i) {
    Result<RecordAddress> addr = mgr->AppendRecord(
        "key" + std::to_string(i), 1, kFlagNone, std::string(3000, 'v'));
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  EXPECT_TRUE(mgr->GcVictims().empty());
  // Kill everything in the first segment.
  const uint32_t victim = addrs.front().segment_id;
  for (const RecordAddress& addr : addrs) {
    if (addr.segment_id == victim) {
      mgr->MarkDead(addr, RecordExtent(5, 3000));
    }
  }
  const std::vector<uint32_t> victims = mgr->GcVictims();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], victim);
  // The active segment is never a victim even when empty-ish.
  EXPECT_NE(victims[0], mgr->active_segment());
}

TEST_F(AofTest, CollectSegmentRelocatesAndErases) {
  auto mgr = OpenManager(/*segment_bytes=*/32 << 10);
  std::vector<RecordAddress> addrs;
  for (int i = 0; i < 20; ++i) {
    Result<RecordAddress> addr = mgr->AppendRecord(
        "key" + std::to_string(i), 1, kFlagNone, std::string(3000, 'a' + i % 26));
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  const uint32_t victim = addrs.front().segment_id;

  std::map<uint32_t, RecordAddress> relocated;  // old offset -> new addr
  size_t dropped = 0;
  Status s = mgr->CollectSegment(
      victim,
      [](const RecordAddress&, const RecordView& rec) {
        // Keep even-numbered keys.
        return (rec.key.ToString().back() - '0') % 2 == 0;
      },
      [&](const RecordAddress& old_addr, const RecordAddress& new_addr,
          const RecordView&) { relocated[old_addr.offset] = new_addr; },
      [&](const RecordAddress&, const RecordView&) { ++dropped; });
  ASSERT_TRUE(s.ok()) << s.ToString();

  EXPECT_GT(relocated.size(), 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_FALSE(env_->FileExists("aof_00000000.dat"));  // Victim erased.
  // Relocated records are readable at their new addresses with intact data.
  for (const auto& [old_offset, new_addr] : relocated) {
    RecordView view;
    ASSERT_TRUE(mgr->ReadRecord(new_addr, 0, &view).ok());
    EXPECT_EQ((view.key.ToString().back() - '0') % 2, 0);
  }
  EXPECT_EQ(mgr->gc_stats().segments_reclaimed, 1u);
  EXPECT_EQ(mgr->gc_stats().records_dropped, dropped);
}

TEST_F(AofTest, CollectActiveSegmentRejected) {
  auto mgr = OpenManager();
  ASSERT_TRUE(mgr->AppendRecord("k", 1, kFlagNone, "v").ok());
  EXPECT_TRUE(mgr->CollectSegment(
                     mgr->active_segment(),
                     [](const RecordAddress&, const RecordView&) { return true; },
                     [](const RecordAddress&, const RecordAddress&,
                        const RecordView&) {},
                     [](const RecordAddress&, const RecordView&) {})
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Scan / recovery
// ---------------------------------------------------------------------------

TEST_F(AofTest, ScanYieldsAllRecordsInOrder) {
  auto mgr = OpenManager(/*segment_bytes=*/32 << 10);
  std::vector<std::string> keys;
  for (int i = 0; i < 25; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(
        mgr->AppendRecord(key, i, kFlagNone, std::string(2000, 'v')).ok());
    keys.push_back(key);
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(mgr->Scan([&](const RecordAddress&, const RecordView& rec) {
                    seen.push_back(rec.key.ToString());
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, keys);
}

TEST_F(AofTest, ScanMinSegmentSkipsPrefix) {
  auto mgr = OpenManager(/*segment_bytes=*/32 << 10);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(mgr->AppendRecord("key" + std::to_string(i), 1, kFlagNone,
                                  std::string(2000, 'v'))
                    .ok());
  }
  size_t all = 0, suffix = 0;
  ASSERT_TRUE(mgr->Scan([&](const RecordAddress&, const RecordView&) {
                    ++all;
                    return true;
                  })
                  .ok());
  ASSERT_TRUE(mgr->Scan(
                     [&](const RecordAddress&, const RecordView&) {
                       ++suffix;
                       return true;
                     },
                     /*min_segment=*/1)
                  .ok());
  EXPECT_LT(suffix, all);
  EXPECT_GT(suffix, 0u);
}

TEST_F(AofTest, ReopenAdoptsSegmentsAndPreservesData) {
  std::vector<std::pair<RecordAddress, std::string>> written;
  {
    auto mgr = OpenManager(/*segment_bytes=*/32 << 10);
    Random rnd(9);
    for (int i = 0; i < 30; ++i) {
      const std::string value = rnd.NextString(1500);
      Result<RecordAddress> addr = mgr->AppendRecord(
          "key" + std::to_string(i), i, kFlagNone, value);
      ASSERT_TRUE(addr.ok());
      written.emplace_back(*addr, value);
    }
    // Manager destroyed: simulated crash (unsynced tail of the active
    // segment is padded out by Close in the destructor).
  }
  auto mgr = OpenManager(/*segment_bytes=*/32 << 10);
  EXPECT_GT(mgr->segment_count(), 0u);
  size_t recovered = 0;
  ASSERT_TRUE(mgr->Scan([&](const RecordAddress& addr, const RecordView& rec) {
                    EXPECT_EQ(written[recovered].first, addr);
                    EXPECT_EQ(written[recovered].second, rec.value.ToString());
                    ++recovered;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(recovered, written.size());
  // New appends land in a fresh segment beyond the adopted ones.
  Result<RecordAddress> addr = mgr->AppendRecord("new", 1, kFlagNone, "v");
  ASSERT_TRUE(addr.ok());
  EXPECT_GT(addr->segment_id, written.back().first.segment_id);
}

TEST_F(AofTest, ReopenWithCheckpointMetadataSkipsScan) {
  std::map<uint32_t, SegmentMeta> metas;
  {
    auto mgr = OpenManager(/*segment_bytes=*/32 << 10);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(mgr->AppendRecord("key" + std::to_string(i), 1, kFlagNone,
                                    std::string(2000, 'v'))
                      .ok());
    }
    ASSERT_TRUE(mgr->SealActive().ok());
    metas = mgr->SegmentMetas();
  }
  const uint64_t reads_before = env_->stats().host_pages_read;
  AofOptions options;
  options.segment_bytes = 32 << 10;
  auto mgr = AofManager::Open(env_.get(), options, &metas);
  ASSERT_TRUE(mgr.ok());
  // Adoption with metadata performs no scanning reads at all.
  EXPECT_EQ(env_->stats().host_pages_read, reads_before);
  // And the accounting matches what was checkpointed.
  for (const auto& [id, meta] : metas) {
    EXPECT_DOUBLE_EQ((*mgr)->Occupancy(id),
                     static_cast<double>(meta.live_bytes) / (32 << 10));
  }
}

TEST_F(AofTest, SealActiveMakesSegmentCollectable) {
  auto mgr = OpenManager();
  Result<RecordAddress> addr = mgr->AppendRecord("k", 1, kFlagNone, "v");
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(mgr->SealActive().ok());
  mgr->MarkDead(*addr, RecordExtent(1, 1));
  const std::vector<uint32_t> victims = mgr->GcVictims();
  ASSERT_EQ(victims.size(), 1u);
  size_t dropped = 0;
  ASSERT_TRUE(mgr->CollectSegment(
                     victims[0],
                     [](const RecordAddress&, const RecordView&) { return false; },
                     [](const RecordAddress&, const RecordAddress&,
                        const RecordView&) {},
                     [&](const RecordAddress&, const RecordView&) { ++dropped; })
                  .ok());
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(mgr->segment_count(), 0u);
}

}  // namespace
}  // namespace directload::aof
