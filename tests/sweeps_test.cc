// Parameterized property sweeps: the invariants of each subsystem must hold
// across its whole configuration space, not just the defaults.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "aof/aof_manager.h"
#include "bifrost/dedup.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "index/builders.h"
#include "index/corpus.h"
#include "lsm/db.h"
#include "lsm/wal.h"
#include "qindb/qindb.h"
#include "ssd/env.h"
#include "ssd/ftl.h"

namespace directload {
namespace {

// ---------------------------------------------------------------------------
// FTL geometry sweep: mapping integrity and WA sanity across shapes.
// ---------------------------------------------------------------------------

class FtlGeometrySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, double>> {
};

TEST_P(FtlGeometrySweep, ChurnPreservesDataAndBoundsAmplification) {
  const auto [pages_per_block, num_blocks, overprovision] = GetParam();
  ssd::Geometry geometry;
  geometry.pages_per_block = pages_per_block;
  geometry.num_blocks = num_blocks;
  geometry.overprovision = overprovision;
  SimClock clock;
  ssd::FtlDevice ftl(geometry, ssd::LatencyModel(), &clock);

  Random rnd(GetParam() == std::make_tuple(8u, 64u, 0.1) ? 1 : 2);
  const uint64_t working_set = ftl.logical_pages() * 7 / 10;
  ASSERT_GT(working_set, 0u);
  // Model: lpa -> fill byte.
  std::map<uint64_t, char> model;
  for (uint64_t i = 0; i < working_set * 4; ++i) {
    const uint64_t lpa = rnd.Uniform(working_set);
    const char fill = static_cast<char>('a' + rnd.Uniform(26));
    ASSERT_TRUE(
        ftl.Write(lpa, std::string(geometry.page_size, fill)).ok());
    model[lpa] = fill;
  }
  // Spot-check a sample of pages against the model.
  std::string out;
  for (int i = 0; i < 50; ++i) {
    const uint64_t lpa = rnd.Uniform(working_set);
    ASSERT_TRUE(ftl.Read(lpa, &out).ok());
    auto it = model.find(lpa);
    if (it != model.end()) {
      EXPECT_EQ(out, std::string(geometry.page_size, it->second)) << lpa;
    }
  }
  // Write amplification is bounded: >= 1 always, and not absurd.
  const double wa = ftl.stats().write_amplification();
  EXPECT_GE(wa, 1.0);
  EXPECT_LT(wa, 12.0);
  // Mapping invariant: every mapped page is valid at the device level.
  EXPECT_GT(ftl.free_blocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FtlGeometrySweep,
    ::testing::Values(std::make_tuple(8u, 64u, 0.1),
                      std::make_tuple(64u, 64u, 0.07),
                      std::make_tuple(16u, 256u, 0.07),
                      std::make_tuple(32u, 128u, 0.2),
                      std::make_tuple(8u, 512u, 0.05)));

// ---------------------------------------------------------------------------
// AOF segment-size sweep: round trips and rollover at every size.
// ---------------------------------------------------------------------------

class AofSegmentSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AofSegmentSweep, AppendReadScanAcrossRollovers) {
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 4096;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                       ssd::LatencyModel(), &clock);
  aof::AofOptions options;
  options.segment_bytes = GetParam();
  auto mgr = std::move(aof::AofManager::Open(env.get(), options)).value();

  Random rnd(5);
  std::vector<std::pair<aof::RecordAddress, std::string>> written;
  for (int i = 0; i < 60; ++i) {
    const std::string value = rnd.NextString(1 + rnd.Uniform(3000));
    Result<aof::RecordAddress> addr =
        mgr->AppendRecord("key" + std::to_string(i), i, aof::kFlagNone, value);
    ASSERT_TRUE(addr.ok());
    written.emplace_back(*addr, value);
  }
  for (const auto& [addr, value] : written) {
    aof::RecordView view;
    ASSERT_TRUE(mgr->ReadRecord(addr, 0, &view).ok());
    EXPECT_EQ(view.value.ToString(), value);
  }
  size_t scanned = 0;
  ASSERT_TRUE(mgr->Scan([&](const aof::RecordAddress&, const aof::RecordView&) {
                    ++scanned;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(scanned, written.size());
}

INSTANTIATE_TEST_SUITE_P(SegmentSizes, AofSegmentSweep,
                         ::testing::Values(8 << 10, 32 << 10, 128 << 10,
                                           1 << 20, 8 << 20));

// ---------------------------------------------------------------------------
// QinDB GC-threshold sweep: correctness must not depend on GC eagerness.
// ---------------------------------------------------------------------------

class GcThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(GcThresholdSweep, WorkloadSurvivesGcAtAnyThreshold) {
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 8192;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 64 << 10;
  options.aof.gc_occupancy_threshold = GetParam();
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();

  Random rnd(31);
  std::map<std::string, std::map<uint64_t, std::string>> model;
  for (uint64_t version = 1; version <= 8; ++version) {
    for (int k = 0; k < 80; ++k) {
      const std::string key = "url:" + std::to_string(k);
      if (version == 1 || rnd.Bernoulli(0.4)) {
        const std::string value = rnd.NextString(1500);
        ASSERT_TRUE(db->Put(key, version, value).ok());
        model[key][version] = value;
      } else {
        ASSERT_TRUE(db->Put(key, version, Slice(), true).ok());
        model[key][version] = model[key][version - 1];
      }
    }
    if (version > 4) {
      ASSERT_TRUE(db->DropVersion(version - 4).ok());
      for (auto& [key, versions] : model) versions.erase(version - 4);
    }
  }
  ASSERT_TRUE(db->ForceGc().ok());
  for (const auto& [key, versions] : model) {
    for (const auto& [version, value] : versions) {
      Result<std::string> got = db->Get(key, version);
      ASSERT_TRUE(got.ok()) << key << "@" << version
                            << " thr=" << GetParam();
      EXPECT_EQ(*got, value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, GcThresholdSweep,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95));

// ---------------------------------------------------------------------------
// Interface-mode sweep: QinDB behaves identically on the native interface
// and on a conventional FTL (only the device-level counters differ).
// ---------------------------------------------------------------------------

class InterfaceModeSweep
    : public ::testing::TestWithParam<ssd::InterfaceMode> {};

TEST_P(InterfaceModeSweep, QinDbWorkloadIdenticalAcrossInterfaces) {
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 8192;
  auto env = NewSsdEnv(GetParam(), geometry, ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 128 << 10;
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();

  Random rnd(91);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "url:" + std::to_string(i);
    const std::string value = rnd.NextString(1500);
    ASSERT_TRUE(db->Put(key, 1, value).ok());
    model[key] = value;
  }
  for (int i = 0; i < 200; i += 3) {
    const std::string key = "url:" + std::to_string(i);
    ASSERT_TRUE(db->Del(key, 1).ok());
    model.erase(key);
  }
  ASSERT_TRUE(db->ForceGc().ok());
  for (const auto& [key, value] : model) {
    Result<std::string> got = db->Get(key, 1);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  // Reopen (recovery) works on both interfaces too.
  db.reset();
  auto reopened = std::move(qindb::QinDb::Open(env.get(), options)).value();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(reopened->Get(key, 1).ok()) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, InterfaceModeSweep,
                         ::testing::Values(ssd::InterfaceMode::kNativeBlock,
                                           ssd::InterfaceMode::kPageMappedFtl),
                         [](const auto& info) {
                           return info.param ==
                                          ssd::InterfaceMode::kNativeBlock
                                      ? "Native"
                                      : "Ftl";
                         });

// ---------------------------------------------------------------------------
// WAL record-size sweep: every fragmentation shape round-trips.
// ---------------------------------------------------------------------------

class WalSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WalSizeSweep, RecordRoundTripsAtBlockBoundaryShapes) {
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 4096;
  auto env = NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, geometry,
                       ssd::LatencyModel(), &clock);
  Random rnd(GetParam());
  const std::string payload = rnd.NextString(GetParam());
  {
    auto file = env->NewWritableFile("log");
    ASSERT_TRUE(file.ok());
    lsm::LogWriter writer(file->get());
    // A small record first so the big one starts mid-block.
    ASSERT_TRUE(writer.AddRecord("lead-in").ok());
    ASSERT_TRUE(writer.AddRecord(payload).ok());
    ASSERT_TRUE(writer.AddRecord("trailer-record").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto file = env->NewRandomAccessFile("log");
  ASSERT_TRUE(file.ok());
  lsm::LogReader reader(file->get());
  std::string record;
  ASSERT_TRUE(reader.ReadRecord(&record));
  EXPECT_EQ(record, "lead-in");
  ASSERT_TRUE(reader.ReadRecord(&record));
  EXPECT_EQ(record, payload);
  ASSERT_TRUE(reader.ReadRecord(&record));
  EXPECT_EQ(record, "trailer-record");
  EXPECT_FALSE(reader.ReadRecord(&record));
}

INSTANTIATE_TEST_SUITE_P(Sizes, WalSizeSweep,
                         ::testing::Values(0u, 1u, 32754u, 32755u, 32756u,
                                           32768u, 65536u, 200000u));

// ---------------------------------------------------------------------------
// Dedup-ratio sweep: measured savings track the corpus change rate.
// ---------------------------------------------------------------------------

class DedupRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(DedupRatioSweep, PairRatioTracksChangeRate) {
  const double change_rate = GetParam();
  webindex::CorpusOptions corpus_options;
  corpus_options.num_docs = 600;
  corpus_options.vocab_size = 2000;
  corpus_options.terms_per_doc = 8;
  corpus_options.abstract_bytes = 512;
  corpus_options.seed = 17;
  webindex::Corpus corpus(corpus_options);
  bifrost::Deduplicator dedup;
  dedup.Process(webindex::BuildSummaryIndex(corpus), nullptr);
  bifrost::DedupStats stats;
  for (int round = 0; round < 3; ++round) {
    corpus.AdvanceVersionWithChangeRate(change_rate);
    dedup.Process(webindex::BuildSummaryIndex(corpus), &stats);
  }
  const double deduped =
      static_cast<double>(stats.pairs_deduped) /
      static_cast<double>(stats.pairs_total);
  EXPECT_NEAR(deduped, 1.0 - change_rate, 0.08) << "rate=" << change_rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, DedupRatioSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 1.0));

// ---------------------------------------------------------------------------
// LSM option sweep: model equality across write-buffer / level budgets.
// ---------------------------------------------------------------------------

class LsmOptionSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t, int>> {};

TEST_P(LsmOptionSweep, RandomWorkloadMatchesModel) {
  const auto [write_buffer, level_base, bloom_bits] = GetParam();
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 16384;
  auto env = NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, geometry,
                       ssd::LatencyModel(), &clock);
  lsm::LsmOptions options;
  options.write_buffer_bytes = write_buffer;
  options.max_bytes_for_level_base = level_base;
  options.target_file_bytes = level_base / 4;
  options.bloom_bits_per_key = bloom_bits;
  auto db = std::move(lsm::LsmDb::Open(env.get(), options)).value();

  Random rnd(write_buffer + level_base + bloom_bits);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2500; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(400));
    if (rnd.Bernoulli(0.75)) {
      const std::string value = rnd.NextString(400);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(db->Delete(key).ok());
      model.erase(key);
    }
  }
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  for (int i = 0; i < 400; ++i) {
    const std::string key = "key" + std::to_string(i);
    Result<std::string> got = db->Get(key);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << key;
    } else {
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(*got, it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, LsmOptionSweep,
    ::testing::Values(std::make_tuple(32ull << 10, 128ull << 10, 10),
                      std::make_tuple(128ull << 10, 512ull << 10, 10),
                      std::make_tuple(64ull << 10, 256ull << 10, 0),
                      std::make_tuple(1ull << 20, 4ull << 20, 16)));

// ---------------------------------------------------------------------------
// Value-size sweep through QinDB: from empty to multi-block values.
// ---------------------------------------------------------------------------

class ValueSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ValueSizeSweep, RoundTripAndRecovery) {
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 16384;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 2 << 20;
  Random rnd(GetParam() + 1);
  const std::string value = rnd.NextString(GetParam());
  {
    auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
    ASSERT_TRUE(db->Put("k", 1, value).ok());
    Result<std::string> got = db->Get("k", 1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, value);
  }
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  Result<std::string> got = db->Get("k", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ValueSizeSweep,
                         ::testing::Values(0u, 1u, 4095u, 4096u, 4097u,
                                           20u << 10, 300u << 10));

}  // namespace
}  // namespace directload
