// Randomized crash-recovery: a seeded workload (PUTs, dedup PUTs, DELs with
// delete logging, re-PUTs, checkpoints, forced GC) is cut short by a hard
// crash at a random op boundary, the engine is reopened, and the recovered
// state must equal the model after some prefix of the ops. The env loses
// the active segment's sub-page tail on a crash, so recovery legitimately
// lands a few ops short of the crash point — but never on a state that is
// not a prefix, never resurrecting a deleted pair, and never losing a pair
// whose record the engine had already made durable (segment seals, GC
// collections, and checkpoints are the durability barriers).
//
// The suite runs at num_shards ∈ {1, 4}. Sharded, the engine commits each
// shard's ops through an independent AOF, so the global-prefix invariant
// splits into a per-shard one: for EVERY shard, the recovered state of the
// keys routed to it must equal some prefix of that shard's op subsequence —
// gap-free per shard, even when the crash clipped the shards at different
// depths. At num_shards=1 this degenerates to the original global check.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

constexpr int kSeeds = 24;
constexpr int kOpsPerSeed = 150;
constexpr int kKeys = 16;
constexpr size_t kValuePadding = 400;

ssd::Geometry CrashGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 2048;  // 64 MiB device.
  return g;
}

std::string KeyOf(int slot) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%02d", slot);
  return std::string(buf);
}

struct ModelVersion {
  std::string value;
  bool dedup = false;
  bool deleted = false;
};
using Model = std::map<std::string, std::map<uint64_t, ModelVersion>>;

const std::string* ExpectedValue(const Model& model, const std::string& key,
                                 uint64_t version, bool* found) {
  *found = false;
  auto kit = model.find(key);
  if (kit == model.end()) return nullptr;
  auto vit = kit->second.find(version);
  if (vit == kit->second.end() || vit->second.deleted) return nullptr;
  *found = true;
  if (!vit->second.dedup) return &vit->second.value;
  for (auto rit = std::make_reverse_iterator(vit);
       rit != kit->second.rend(); ++rit) {
    if (!rit->second.dedup) return &rit->second.value;
  }
  *found = false;
  return nullptr;
}

// True if the recovered engine's observable state equals `model` over the
// given (key, version) universe.
bool StateMatches(QinDb* db, const Model& model,
                  const std::vector<std::pair<std::string, uint64_t>>& pairs) {
  for (const auto& [key, version] : pairs) {
    bool expect_found = false;
    const std::string* expected =
        ExpectedValue(model, key, version, &expect_found);
    Result<std::string> got = db->Get(key, version);
    if (expect_found) {
      if (!got.ok() || *got != *expected) return false;
    } else {
      if (!got.status().IsNotFound()) return false;
    }
  }
  return true;
}

class CrashRecoveryTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(ShardCounts, CrashRecoveryTest,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST_P(CrashRecoveryTest, RandomCrashRecoversAPerShardPrefixOfTheWorkload) {
  const uint32_t num_shards = GetParam();
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rnd(static_cast<uint64_t>(seed) * 7789);

    SimClock clock;
    auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                              CrashGeometry(), ssd::LatencyModel(), &clock);
    QinDbOptions options;
    options.num_shards = num_shards;
    options.aof.segment_bytes = 4 << 10;  // Frequent seals and GC victims.
    options.aof.log_deletes = true;       // DELs must survive the crash.
    options.auto_gc = false;              // GC only as an explicit op.
    auto opened = QinDb::Open(env.get(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<QinDb> db = std::move(opened).value();

    const int crash_at = static_cast<int>(rnd.UniformRange(1, kOpsPerSeed));
    // Per-shard histories: shard_snapshots[s][n] = the model of shard s's
    // keys after the first n ops ROUTED TO SHARD s. The workload itself is
    // sequential, but a crash cuts each shard's AOF independently, so the
    // match below is per shard, not global.
    std::vector<Model> shard_models(num_shards);
    std::vector<std::vector<Model>> shard_snapshots(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      shard_snapshots[s].emplace_back();  // Prefix of length 0.
    }

    for (int op = 0; op < crash_at; ++op) {
      const std::string key =
          KeyOf(static_cast<int>(rnd.Uniform(kKeys)));
      const uint32_t shard = db->ShardOf(key);
      Model& model = shard_models[shard];
      std::map<uint64_t, ModelVersion>& versions = model[key];
      const auto newest =
          versions.empty() ? versions.end() : std::prev(versions.end());
      const double choice = rnd.NextDouble();
      bool mutated = true;

      if (choice < 0.05) {
        // Durability barrier on every shard; mutates none of the models.
        ASSERT_TRUE(db->Checkpoint().ok());
        mutated = false;
      } else if (choice < 0.10) {
        ASSERT_TRUE(db->ForceGc().ok());
        mutated = false;
      } else if (choice < 0.25 && newest != versions.end()) {
        // DEL a random live version (referents included).
        std::vector<uint64_t> live;
        for (const auto& [v, state] : versions) {
          if (!state.deleted) live.push_back(v);
        }
        if (!live.empty()) {
          const uint64_t victim = live[rnd.Uniform(live.size())];
          ASSERT_TRUE(db->Del(key, victim).ok());
          versions[victim].deleted = true;
        } else {
          mutated = false;
        }
      } else if (choice < 0.40 && newest != versions.end() &&
                 !newest->second.deleted && !newest->second.dedup) {
        // Dedup PUT on top of a live value-bearing version.
        const uint64_t v = newest->first + 1;
        ASSERT_TRUE(db->Put(key, v, Slice(), /*dedup=*/true).ok());
        versions[v] = ModelVersion{std::string(), true, false};
      } else if (choice < 0.50 && newest != versions.end() &&
                 !newest->second.deleted && !newest->second.dedup) {
        // Re-PUT of the newest live version (supersedes the record).
        const uint64_t v = newest->first;
        const std::string value = rnd.NextString(kValuePadding);
        ASSERT_TRUE(db->Put(key, v, value).ok());
        versions[v].value = value;
      } else {
        const uint64_t v =
            versions.empty() ? 1 : versions.rbegin()->first + 1;
        const std::string value = rnd.NextString(kValuePadding);
        ASSERT_TRUE(db->Put(key, v, value).ok());
        versions[v] = ModelVersion{value, false, false};
      }
      if (versions.empty()) model.erase(key);  // Keep untouched keys out.
      if (mutated) shard_snapshots[shard].push_back(model);
    }

    // Hard crash: leak the engine so no destructor seals or pads anything;
    // the env forgets every open writer's volatile tail.
    (void)db.release();
    ssd::SsdEnv* raw_env = env.get();
    raw_env->SimulateCrashForTesting();

    auto reopened = QinDb::Open(raw_env, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<QinDb> recovered = std::move(reopened).value();

    // Per shard: the (key, version) universe that shard's ops ever touched;
    // states beyond the matched prefix must read back NotFound. Each shard
    // must land on SOME prefix of its own op subsequence — a gap (op k
    // recovered without op k-1 of the same shard) matches no prefix.
    for (uint32_t s = 0; s < num_shards; ++s) {
      SCOPED_TRACE("shard " + std::to_string(s));
      std::vector<std::pair<std::string, uint64_t>> pairs;
      for (const auto& [key, versions] : shard_models[s]) {
        for (const auto& [version, state] : versions) {
          pairs.emplace_back(key, version);
        }
      }
      int matched = -1;
      const auto& snapshots = shard_snapshots[s];
      for (int n = static_cast<int>(snapshots.size()) - 1; n >= 0; --n) {
        if (StateMatches(recovered.get(), snapshots[n], pairs)) {
          matched = n;
          break;
        }
      }
      ASSERT_GE(matched, 0)
          << "shard " << s << " recovered to a state matching no prefix of "
          << "its " << snapshots.size() - 1 << " routed ops";
    }

    Result<QinDb::ScrubReport> report = recovered->Scrub();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean())
        << report->damaged_entries << " damaged, "
        << report->unresolvable_dedups << " unresolvable dedups";
  }
}

// A checkpoint is a full durability barrier: a crash any time after it must
// recover at least the checkpointed state. QinDb::Checkpoint checkpoints
// every shard, so the floor is global at any shard count.
TEST_P(CrashRecoveryTest, CheckpointIsADurabilityFloor) {
  const uint32_t num_shards = GetParam();
  for (int seed = 100; seed < 108; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rnd(static_cast<uint64_t>(seed));

    SimClock clock;
    auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                              CrashGeometry(), ssd::LatencyModel(), &clock);
    QinDbOptions options;
    options.num_shards = num_shards;
    options.aof.segment_bytes = 4 << 10;
    options.aof.log_deletes = true;
    options.auto_gc = false;
    auto opened = QinDb::Open(env.get(), options);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<QinDb> db = std::move(opened).value();

    Model model;
    for (int op = 0; op < 40; ++op) {
      const std::string key = KeyOf(static_cast<int>(rnd.Uniform(kKeys)));
      auto& versions = model[key];
      const uint64_t v = versions.empty() ? 1 : versions.rbegin()->first + 1;
      const std::string value = rnd.NextString(kValuePadding);
      ASSERT_TRUE(db->Put(key, v, value).ok());
      versions[v] = ModelVersion{value, false, false};
      if (op % 3 == 0 && v > 1 && !versions[v - 1].deleted) {
        ASSERT_TRUE(db->Del(key, v - 1).ok());
        versions[v - 1].deleted = true;
      }
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    const Model at_checkpoint = model;

    // Volatile suffix that the crash may or may not preserve.
    for (int op = 0; op < 10; ++op) {
      const std::string key = KeyOf(static_cast<int>(rnd.Uniform(kKeys)));
      auto& versions = model[key];
      const uint64_t v = versions.empty() ? 1 : versions.rbegin()->first + 1;
      ASSERT_TRUE(db->Put(key, v, rnd.NextString(kValuePadding)).ok());
    }

    (void)db.release();
    ssd::SsdEnv* raw_env = env.get();
    raw_env->SimulateCrashForTesting();
    auto reopened = QinDb::Open(raw_env, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<QinDb> recovered = std::move(reopened).value();

    for (const auto& [key, versions] : at_checkpoint) {
      for (const auto& [version, state] : versions) {
        bool expect_found = false;
        const std::string* expected =
            ExpectedValue(at_checkpoint, key, version, &expect_found);
        Result<std::string> got = recovered->Get(key, version);
        if (expect_found) {
          ASSERT_TRUE(got.ok())
              << key << "/" << version << ": " << got.status().ToString();
          EXPECT_EQ(*got, *expected) << key << "/" << version;
        } else {
          EXPECT_TRUE(got.status().IsNotFound()) << key << "/" << version;
        }
      }
    }
  }
}

// A bulk-ingest session cut down by a crash must be all-or-nothing per
// shard: a crash BEFORE the commit marker leaves no trace of the staged
// version (never a partial one), and a crash AFTER commit recovers the
// version gap-free. Normal writes interleave with the staged run to prove
// the pending records don't disturb the live write path's recovery.
TEST_P(CrashRecoveryTest, MidBulkCrashLeavesNoTraceCommittedBulkSurvives) {
  const uint32_t num_shards = GetParam();
  for (const bool committed : {false, true}) {
    SCOPED_TRACE(committed ? "crash after commit" : "crash before commit");
    SimClock clock;
    auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                              CrashGeometry(), ssd::LatencyModel(), &clock);
    QinDbOptions options;
    options.num_shards = num_shards;
    options.aof.segment_bytes = 4 << 10;
    options.aof.log_deletes = true;
    options.auto_gc = false;
    auto opened = QinDb::Open(env.get(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<QinDb> db = std::move(opened).value();

    // A live base the bulk load lands on top of.
    constexpr int kLive = 12;
    for (int i = 0; i < kLive; ++i) {
      ASSERT_TRUE(
          db->Put(KeyOf(i), 1, "live" + std::to_string(i)).ok());
    }
    // Durability barrier: version 1 must survive the crash no matter how
    // little the session appends afterwards.
    ASSERT_TRUE(db->Checkpoint().ok());

    constexpr uint64_t kBulkVersion = 2;
    std::vector<std::string> bulk_keys, bulk_values;
    for (int i = 0; i < 24; ++i) {
      bulk_keys.push_back("bulk" + std::to_string(i));
      bulk_values.push_back("staged" + std::to_string(i));
    }
    std::vector<IngestOp> ops(bulk_keys.size());
    for (size_t i = 0; i < bulk_keys.size(); ++i) {
      ops[i].key = bulk_keys[i];
      ops[i].version = kBulkVersion;
      ops[i].value = bulk_values[i];
    }
    ASSERT_TRUE(db->IngestBegin(kBulkVersion).ok());
    ASSERT_TRUE(db->IngestRun(kBulkVersion, ops.data(), ops.size()).ok());
    // Live writes between the staged run and the crash: their recovery
    // must not be disturbed by the pending records around them.
    for (int i = 0; i < kLive; ++i) {
      ASSERT_TRUE(
          db->Put(KeyOf(i), 3, "after" + std::to_string(i)).ok());
    }
    if (committed) {
      ASSERT_TRUE(db->IngestCommit(kBulkVersion).ok());
      // Barrier after the marker: the committed arm asserts presence, so
      // the marker must be durable when the crash lands. (The uncommitted
      // arm needs no barrier — absence holds regardless of what the crash
      // drops.)
      ASSERT_TRUE(db->Checkpoint().ok());
    }

    (void)db.release();
    ssd::SsdEnv* raw_env = env.get();
    raw_env->SimulateCrashForTesting();
    auto reopened = QinDb::Open(raw_env, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<QinDb> recovered = std::move(reopened).value();

    // The staged version is all-or-nothing: every pair or none, per the
    // commit marker.
    for (size_t i = 0; i < bulk_keys.size(); ++i) {
      Result<std::string> got = recovered->Get(bulk_keys[i], kBulkVersion);
      if (committed) {
        ASSERT_TRUE(got.ok())
            << bulk_keys[i] << ": " << got.status().ToString();
        EXPECT_EQ(*got, bulk_values[i]);
      } else {
        EXPECT_TRUE(got.status().IsNotFound())
            << bulk_keys[i] << " resurrected from an uncommitted session";
      }
    }
    EXPECT_EQ(recovered->VersionCounts().count(kBulkVersion),
              committed ? 1u : 0u);

    // The live pairs recovered independently of the bulk outcome (version
    // 1 was never crash-exposed: segment activity from the staged run and
    // the later puts is not a barrier, so only assert the durable floor).
    for (int i = 0; i < kLive; ++i) {
      Result<std::string> got = recovered->Get(KeyOf(i), 1);
      ASSERT_TRUE(got.ok()) << KeyOf(i) << ": " << got.status().ToString();
      EXPECT_EQ(*got, "live" + std::to_string(i));
    }

    // The recovered engine accepts a fresh bulk session and serves it.
    constexpr uint64_t kNextVersion = 4;
    std::vector<IngestOp> next(1);
    next[0].key = bulk_keys[0];
    next[0].version = kNextVersion;
    next[0].value = bulk_values[0];
    ASSERT_TRUE(recovered->IngestBegin(kNextVersion).ok());
    ASSERT_TRUE(recovered->IngestRun(kNextVersion, next.data(), 1).ok());
    ASSERT_TRUE(recovered->IngestCommit(kNextVersion).ok());
    ASSERT_TRUE(recovered->Get(bulk_keys[0], kNextVersion).ok());

    Result<QinDb::ScrubReport> report = recovered->Scrub();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean())
        << report->damaged_entries << " damaged, "
        << report->unresolvable_dedups << " unresolvable dedups";
  }
}

}  // namespace
}  // namespace directload::qindb
