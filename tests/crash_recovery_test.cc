// Randomized crash-recovery: a seeded workload (PUTs, dedup PUTs, DELs with
// delete logging, re-PUTs, checkpoints, forced GC) is cut short by a hard
// crash at a random op boundary, the engine is reopened, and the recovered
// state must equal the model after some prefix of the ops. The env loses
// the active segment's sub-page tail on a crash, so recovery legitimately
// lands a few ops short of the crash point — but never on a state that is
// not a prefix, never resurrecting a deleted pair, and never losing a pair
// whose record the engine had already made durable (segment seals, GC
// collections, and checkpoints are the durability barriers).

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

constexpr int kSeeds = 24;
constexpr int kOpsPerSeed = 150;
constexpr int kKeys = 16;
constexpr size_t kValuePadding = 400;

ssd::Geometry CrashGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 2048;  // 64 MiB device.
  return g;
}

std::string KeyOf(int slot) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%02d", slot);
  return std::string(buf);
}

struct ModelVersion {
  std::string value;
  bool dedup = false;
  bool deleted = false;
};
using Model = std::map<std::string, std::map<uint64_t, ModelVersion>>;

const std::string* ExpectedValue(const Model& model, const std::string& key,
                                 uint64_t version, bool* found) {
  *found = false;
  auto kit = model.find(key);
  if (kit == model.end()) return nullptr;
  auto vit = kit->second.find(version);
  if (vit == kit->second.end() || vit->second.deleted) return nullptr;
  *found = true;
  if (!vit->second.dedup) return &vit->second.value;
  for (auto rit = std::make_reverse_iterator(vit);
       rit != kit->second.rend(); ++rit) {
    if (!rit->second.dedup) return &rit->second.value;
  }
  *found = false;
  return nullptr;
}

// True if the recovered engine's observable state equals `model` over the
// given (key, version) universe.
bool StateMatches(QinDb* db, const Model& model,
                  const std::vector<std::pair<std::string, uint64_t>>& pairs) {
  for (const auto& [key, version] : pairs) {
    bool expect_found = false;
    const std::string* expected =
        ExpectedValue(model, key, version, &expect_found);
    Result<std::string> got = db->Get(key, version);
    if (expect_found) {
      if (!got.ok() || *got != *expected) return false;
    } else {
      if (!got.status().IsNotFound()) return false;
    }
  }
  return true;
}

TEST(CrashRecoveryTest, RandomCrashRecoversAPrefixOfTheWorkload) {
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rnd(static_cast<uint64_t>(seed) * 7789);

    SimClock clock;
    auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                              CrashGeometry(), ssd::LatencyModel(), &clock);
    QinDbOptions options;
    options.aof.segment_bytes = 4 << 10;  // Frequent seals and GC victims.
    options.aof.log_deletes = true;       // DELs must survive the crash.
    options.auto_gc = false;              // GC only as an explicit op.
    auto opened = QinDb::Open(env.get(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<QinDb> db = std::move(opened).value();

    const int crash_at = static_cast<int>(rnd.UniformRange(1, kOpsPerSeed));
    std::vector<Model> snapshots;  // snapshots[n] = model after n ops.
    snapshots.emplace_back();
    Model model;

    for (int op = 0; op < crash_at; ++op) {
      const std::string key =
          KeyOf(static_cast<int>(rnd.Uniform(kKeys)));
      std::map<uint64_t, ModelVersion>& versions = model[key];
      const auto newest =
          versions.empty() ? versions.end() : std::prev(versions.end());
      const double choice = rnd.NextDouble();

      if (choice < 0.05) {
        ASSERT_TRUE(db->Checkpoint().ok());
      } else if (choice < 0.10) {
        ASSERT_TRUE(db->ForceGc().ok());
      } else if (choice < 0.25 && newest != versions.end()) {
        // DEL a random live version (referents included).
        std::vector<uint64_t> live;
        for (const auto& [v, state] : versions) {
          if (!state.deleted) live.push_back(v);
        }
        if (!live.empty()) {
          const uint64_t victim = live[rnd.Uniform(live.size())];
          ASSERT_TRUE(db->Del(key, victim).ok());
          versions[victim].deleted = true;
        }
      } else if (choice < 0.40 && newest != versions.end() &&
                 !newest->second.deleted && !newest->second.dedup) {
        // Dedup PUT on top of a live value-bearing version.
        const uint64_t v = newest->first + 1;
        ASSERT_TRUE(db->Put(key, v, Slice(), /*dedup=*/true).ok());
        versions[v] = ModelVersion{std::string(), true, false};
      } else if (choice < 0.50 && newest != versions.end() &&
                 !newest->second.deleted && !newest->second.dedup) {
        // Re-PUT of the newest live version (supersedes the record).
        const uint64_t v = newest->first;
        const std::string value = rnd.NextString(kValuePadding);
        ASSERT_TRUE(db->Put(key, v, value).ok());
        versions[v].value = value;
      } else {
        const uint64_t v =
            versions.empty() ? 1 : versions.rbegin()->first + 1;
        const std::string value = rnd.NextString(kValuePadding);
        ASSERT_TRUE(db->Put(key, v, value).ok());
        versions[v] = ModelVersion{value, false, false};
      }
      snapshots.push_back(model);
    }

    // Hard crash: leak the engine so no destructor seals or pads anything;
    // the env forgets every open writer's volatile tail.
    (void)db.release();
    ssd::SsdEnv* raw_env = env.get();
    raw_env->SimulateCrashForTesting();

    auto reopened = QinDb::Open(raw_env, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<QinDb> recovered = std::move(reopened).value();

    // The (key, version) universe of the full workload; states beyond the
    // matched prefix must read back NotFound.
    std::vector<std::pair<std::string, uint64_t>> pairs;
    for (const auto& [key, versions] : model) {
      for (const auto& [version, state] : versions) {
        pairs.emplace_back(key, version);
      }
    }

    int matched = -1;
    for (int n = static_cast<int>(snapshots.size()) - 1; n >= 0; --n) {
      if (StateMatches(recovered.get(), snapshots[n], pairs)) {
        matched = n;
        break;
      }
    }
    ASSERT_GE(matched, 0)
        << "recovered state matches no prefix of the " << crash_at
        << " applied ops";

    Result<QinDb::ScrubReport> report = recovered->Scrub();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean())
        << report->damaged_entries << " damaged, "
        << report->unresolvable_dedups << " unresolvable dedups";
  }
}

// A checkpoint is a full durability barrier: a crash any time after it must
// recover at least the checkpointed state.
TEST(CrashRecoveryTest, CheckpointIsADurabilityFloor) {
  for (int seed = 100; seed < 108; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rnd(static_cast<uint64_t>(seed));

    SimClock clock;
    auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                              CrashGeometry(), ssd::LatencyModel(), &clock);
    QinDbOptions options;
    options.aof.segment_bytes = 4 << 10;
    options.aof.log_deletes = true;
    options.auto_gc = false;
    auto opened = QinDb::Open(env.get(), options);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<QinDb> db = std::move(opened).value();

    Model model;
    for (int op = 0; op < 40; ++op) {
      const std::string key = KeyOf(static_cast<int>(rnd.Uniform(kKeys)));
      auto& versions = model[key];
      const uint64_t v = versions.empty() ? 1 : versions.rbegin()->first + 1;
      const std::string value = rnd.NextString(kValuePadding);
      ASSERT_TRUE(db->Put(key, v, value).ok());
      versions[v] = ModelVersion{value, false, false};
      if (op % 3 == 0 && v > 1 && !versions[v - 1].deleted) {
        ASSERT_TRUE(db->Del(key, v - 1).ok());
        versions[v - 1].deleted = true;
      }
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    const Model at_checkpoint = model;

    // Volatile suffix that the crash may or may not preserve.
    for (int op = 0; op < 10; ++op) {
      const std::string key = KeyOf(static_cast<int>(rnd.Uniform(kKeys)));
      auto& versions = model[key];
      const uint64_t v = versions.empty() ? 1 : versions.rbegin()->first + 1;
      ASSERT_TRUE(db->Put(key, v, rnd.NextString(kValuePadding)).ok());
    }

    (void)db.release();
    ssd::SsdEnv* raw_env = env.get();
    raw_env->SimulateCrashForTesting();
    auto reopened = QinDb::Open(raw_env, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<QinDb> recovered = std::move(reopened).value();

    for (const auto& [key, versions] : at_checkpoint) {
      for (const auto& [version, state] : versions) {
        bool expect_found = false;
        const std::string* expected =
            ExpectedValue(at_checkpoint, key, version, &expect_found);
        Result<std::string> got = recovered->Get(key, version);
        if (expect_found) {
          ASSERT_TRUE(got.ok())
              << key << "/" << version << ": " << got.status().ToString();
          EXPECT_EQ(*got, *expected) << key << "/" << version;
        } else {
          EXPECT_TRUE(got.status().IsNotFound()) << key << "/" << version;
        }
      }
    }
  }
}

}  // namespace
}  // namespace directload::qindb
