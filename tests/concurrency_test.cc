// Concurrency stress for QinDB: real writer, reader, and GC threads racing
// one engine. Writers own disjoint key ranges and keep a private model;
// readers validate whatever they observe mid-race via self-verifying
// values; after the threads join, the quiescent state is checked against
// the models entry by entry and scrubbed. Run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kOpsPerWriter = 500;
constexpr int kKeysPerWriter = 24;
constexpr size_t kValuePadding = 480;

ssd::Geometry StressGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 4096;  // 128 MiB device.
  return g;
}

std::string KeyFor(int writer, int slot) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%d:key%03d", writer, slot);
  return std::string(buf);
}

// Self-verifying value: the prefix identifies the key (and the version that
// wrote it), so a reader can validate any value it observes mid-race.
std::string ValueFor(const std::string& key, uint64_t version, Random* rnd) {
  return key + "#" + std::to_string(version) + "#" +
         rnd->NextString(kValuePadding);
}

bool ValueMatchesKey(const std::string& value, const std::string& key) {
  return value.size() > key.size() + 1 &&
         value.compare(0, key.size(), key) == 0 && value[key.size()] == '#';
}

struct ModelVersion {
  std::string value;  // Stored bytes; empty for dedup versions.
  bool dedup = false;
  bool deleted = false;
};
// key -> version -> state. Each writer thread owns one model exclusively.
using Model = std::map<std::string, std::map<uint64_t, ModelVersion>>;

// What Get(key, version) should return per the model: deleted pairs are
// NotFound; dedup pairs resolve through the newest older non-dedup version
// (deleted or not — the engine preserves referents until the chain dies).
const std::string* ExpectedValue(const Model& model, const std::string& key,
                                 uint64_t version, bool* found) {
  *found = false;
  auto kit = model.find(key);
  if (kit == model.end()) return nullptr;
  auto vit = kit->second.find(version);
  if (vit == kit->second.end() || vit->second.deleted) return nullptr;
  *found = true;
  if (!vit->second.dedup) return &vit->second.value;
  for (auto rit = std::make_reverse_iterator(vit);
       rit != kit->second.rend(); ++rit) {
    if (!rit->second.dedup) return &rit->second.value;
  }
  *found = false;  // Unresolvable dedup: the workload never creates these.
  return nullptr;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() {
    env_ = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, StressGeometry(),
                     ssd::LatencyModel(), &clock_);
  }

  std::unique_ptr<QinDb> OpenDb(QinDbOptions options = {}) {
    if (options.num_shards == 0) options.num_shards = 1;
    options.aof.segment_bytes = 64 << 10;  // Many segments → GC pressure.
    auto db = QinDb::Open(env_.get(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

void RunWriter(QinDb* db, int writer, Model* model) {
  Random rnd(1000 + writer);
  for (int op = 0; op < kOpsPerWriter; ++op) {
    const int slot = static_cast<int>(rnd.Uniform(kKeysPerWriter));
    const std::string key = KeyFor(writer, slot);
    std::map<uint64_t, ModelVersion>& versions = (*model)[key];
    const double choice = rnd.NextDouble();

    if (choice < 0.15 && !versions.empty()) {
      // DEL a random live version. Deleting referents is fine: the engine
      // keeps their records while a live dedup version above needs them.
      std::vector<uint64_t> live;
      for (const auto& [v, state] : versions) {
        if (!state.deleted) live.push_back(v);
      }
      if (!live.empty()) {
        const uint64_t victim = live[rnd.Uniform(live.size())];
        ASSERT_TRUE(db->Del(key, victim).ok());
        versions[victim].deleted = true;
        continue;
      }
    }

    const uint64_t next =
        versions.empty() ? 1 : versions.rbegin()->first + 1;
    const auto& newest = versions.empty() ? versions.end()
                                          : std::prev(versions.end());
    // Dedup-PUT only on top of a live, value-bearing newest version, so
    // every dedup pair resolves and its referent is live at insert time
    // (a deleted referent's record could already have been collected).
    if (choice < 0.35 && newest != versions.end() &&
        !newest->second.deleted && !newest->second.dedup) {
      ASSERT_TRUE(db->Put(key, next, Slice(), /*dedup=*/true).ok());
      versions[next] = ModelVersion{std::string(), /*dedup=*/true, false};
      continue;
    }

    if (choice < 0.45 && newest != versions.end() &&
        !newest->second.deleted && !newest->second.dedup) {
      // Re-PUT of the newest live version: supersedes the record in place,
      // exercising the address-patch-while-reading retry path.
      const uint64_t v = newest->first;
      const std::string value = ValueFor(key, v, &rnd);
      ASSERT_TRUE(db->Put(key, v, value).ok());
      versions[v].value = value;
      continue;
    }

    const std::string value = ValueFor(key, next, &rnd);
    ASSERT_TRUE(db->Put(key, next, value).ok());
    versions[next] = ModelVersion{value, false, false};

    if (writer == 0 && op % 125 == 124) {
      ASSERT_TRUE(db->Checkpoint().ok());
    }
  }
}

void RunReader(QinDb* db, int reader, const std::atomic<bool>* done,
               std::atomic<uint64_t>* successes) {
  Random rnd(2000 + reader);
  uint64_t iter = 0;
  while (!done->load(std::memory_order_acquire)) {
    const int writer = static_cast<int>(rnd.Uniform(kWriters));
    const std::string key =
        KeyFor(writer, static_cast<int>(rnd.Uniform(kKeysPerWriter)));
    if (iter % 32 == 31) {
      // Range scan racing the writers: whatever pairs it surfaces must
      // carry values that belong to their keys.
      QinDb::Scanner scanner = db->NewScanner();
      for (int steps = 0; scanner.Valid() && steps < 64; ++steps) {
        Result<std::string> value = scanner.value();
        if (value.ok()) {
          EXPECT_TRUE(ValueMatchesKey(*value, scanner.key().ToString()))
              << "scan of " << scanner.key().ToString() << " returned "
              << value->substr(0, 40);
          successes->fetch_add(1, std::memory_order_relaxed);
        }
        scanner.Next();
      }
    } else {
      Result<std::string> value =
          (iter % 2 == 0) ? db->Get(key, rnd.UniformRange(1, 12))
                          : db->GetLatest(key);
      // Errors (NotFound, mid-race states) are expected on racing keys;
      // any value that does come back must be the key's own.
      if (value.ok()) {
        EXPECT_TRUE(ValueMatchesKey(*value, key))
            << "read of " << key << " returned " << value->substr(0, 40);
        successes->fetch_add(1, std::memory_order_relaxed);
      }
    }
    ++iter;
  }
}

TEST_F(ConcurrencyTest, WritersReadersAndGcRace) {
  auto db = OpenDb();
  std::vector<Model> models(kWriters);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> successes{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back(RunReader, db.get(), r, &done, &successes);
  }
  std::thread gc([&db, &done] {
    uint64_t rounds = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (++rounds % 8 == 0) {
        EXPECT_TRUE(db->ForceGc().ok());
      } else {
        EXPECT_TRUE(db->MaybeGc().ok());
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back(RunWriter, db.get(), w, &models[w]);
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  gc.join();

  EXPECT_GT(successes.load(), 0u) << "readers never observed a value";

  // Quiescent now: one more full collection, then check the engine state
  // against the writers' models pair by pair.
  ASSERT_TRUE(db->ForceGc().ok());
  for (int w = 0; w < kWriters; ++w) {
    for (const auto& [key, versions] : models[w]) {
      for (const auto& [version, state] : versions) {
        bool expect_found = false;
        const std::string* expected =
            ExpectedValue(models[w], key, version, &expect_found);
        Result<std::string> got = db->Get(key, version);
        if (expect_found) {
          ASSERT_TRUE(got.ok()) << key << "/" << version << ": "
                                << got.status().ToString();
          EXPECT_EQ(*got, *expected) << key << "/" << version;
        } else {
          EXPECT_TRUE(got.status().IsNotFound())
              << key << "/" << version << ": " << got.status().ToString();
        }
      }
    }
  }

  Result<QinDb::ScrubReport> report = db->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean())
      << report->damaged_entries << " damaged, "
      << report->unresolvable_dedups << " unresolvable dedups of "
      << report->entries_checked;
  EXPECT_EQ(db->reads_in_flight(), 0);
}

// Regression: reads_in_flight_ was a plain int mutated by ReadGuard from
// multiple threads; increments could be lost and GC deferral would then
// consult a corrupt count. Guards taken concurrently — nested, as Get
// inside Scanner::value does — must balance back to exactly zero.
TEST_F(ConcurrencyTest, ReadGuardBalancesAcrossThreads) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", 1, "v").ok());
  {
    QinDb::ReadGuard outer(db.get());
    QinDb::ReadGuard inner(db.get());
    EXPECT_EQ(db->reads_in_flight(), 2);
  }
  EXPECT_EQ(db->reads_in_flight(), 0);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db] {
      for (int i = 0; i < 20000; ++i) {
        QinDb::ReadGuard outer(db.get());
        QinDb::ReadGuard inner(db.get());
        EXPECT_GE(db->reads_in_flight(), 2);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db->reads_in_flight(), 0);
}

}  // namespace
}  // namespace directload::qindb
