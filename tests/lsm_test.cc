#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "lsm/block.h"
#include "lsm/bloom.h"
#include "lsm/cache.h"
#include "lsm/db.h"
#include "lsm/format.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "ssd/env.h"

namespace directload::lsm {
namespace {

ssd::Geometry TestGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 8192;  // 256 MiB device.
  return g;
}

LsmOptions SmallOptions() {
  LsmOptions o;
  o.write_buffer_bytes = 64 << 10;
  o.max_bytes_for_level_base = 256 << 10;
  o.target_file_bytes = 64 << 10;
  o.block_cache_bytes = 256 << 10;
  return o;
}

// ---------------------------------------------------------------------------
// Blocks
// ---------------------------------------------------------------------------

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%04d", i);
    entries.emplace_back(key, "value" + std::to_string(i));
  }
  for (const auto& [k, v] : entries) builder.Add(k, v);
  Block block(builder.Finish().ToString());
  auto it = block.NewIterator(BytewiseComparator());
  EXPECT_FALSE(it->Valid());
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->key().ToString(), entries[n].first);
    EXPECT_EQ(it->value().ToString(), entries[n].second);
    ++n;
  }
  EXPECT_EQ(n, entries.size());
  EXPECT_TRUE(it->status().ok());
}

TEST(BlockTest, SeekSemantics) {
  BlockBuilder builder(4);
  for (const char* k : {"b", "d", "f", "h"}) builder.Add(k, k);
  Block block(builder.Finish().ToString());
  auto it = block.NewIterator(BytewiseComparator());
  it->Seek("d");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "d");
  it->Seek("e");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "f");
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "b");
  it->Seek("z");
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, PrefixCompressionRoundTrip) {
  BlockBuilder builder(16);
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("common/long/prefix/key" + std::to_string(1000 + i));
  }
  for (const auto& k : keys) builder.Add(k, "v");
  // The block must be much smaller than the raw keys thanks to sharing.
  const size_t raw = keys.size() * keys[0].size();
  Block block(builder.Finish().ToString());
  EXPECT_LT(block.size(), raw / 2);
  auto it = block.NewIterator(BytewiseComparator());
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->key().ToString(), keys[n++]);
  }
  EXPECT_EQ(n, keys.size());
}

TEST(BlockTest, MalformedBlockYieldsCorruption) {
  Block block("ab");
  auto it = block.NewIterator(BytewiseComparator());
  EXPECT_TRUE(it->status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Bloom
// ---------------------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; ++i) {
    builder.AddKey("key" + std::to_string(i));
  }
  const std::string filter = builder.Finish();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(BloomFilterMayMatch(filter, "key" + std::to_string(i))) << i;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; ++i) builder.AddKey("key" + std::to_string(i));
  const std::string filter = builder.Finish();
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (BloomFilterMayMatch(filter, "absent" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // 10 bits/key gives ~1%; allow generous slack.
  EXPECT_LT(false_positives, 300);
}

TEST(BloomTest, EmptyFilterMatchesEverything) {
  EXPECT_TRUE(BloomFilterMayMatch(Slice(), "anything"));
}

// ---------------------------------------------------------------------------
// LRU cache
// ---------------------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::string> cache(100);
  cache.Insert("a", std::make_shared<std::string>("A"), 40);
  cache.Insert("b", std::make_shared<std::string>("B"), 40);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // Refresh "a".
  cache.Insert("c", std::make_shared<std::string>("C"), 40);  // Evicts "b".
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_LE(cache.usage(), 100u);
}

TEST(LruCacheTest, ZeroCapacityNeverRetains) {
  LruCache<int> cache(0);
  cache.Insert("k", std::make_shared<int>(1), 1);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(LruCacheTest, HitMissCountersTrack) {
  LruCache<int> cache(10);
  cache.Insert("a", std::make_shared<int>(1), 1);
  (void)cache.Lookup("a");
  (void)cache.Lookup("a");
  (void)cache.Lookup("missing");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, OversizedEntryEvictsItself) {
  LruCache<int> cache(5);
  cache.Insert("big", std::make_shared<int>(1), 100);
  EXPECT_EQ(cache.Lookup("big"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(LruCacheTest, ReplaceAndErase) {
  LruCache<int> cache(10);
  cache.Insert("k", std::make_shared<int>(1), 1);
  cache.Insert("k", std::make_shared<int>(2), 1);
  EXPECT_EQ(*cache.Lookup("k"), 2);
  EXPECT_EQ(cache.size(), 1u);
  cache.Erase("k");
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  WalTest()
      : env_(NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, TestGeometry(),
                       ssd::LatencyModel(), &clock_)) {}
  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

TEST_F(WalTest, RoundTripIncludingFragmentation) {
  Random rnd(7);
  std::vector<std::string> records = {
      "", "short", rnd.NextString(10000), rnd.NextString(70000),  // > 2 blocks
      "tail"};
  {
    auto file = env_->NewWritableFile("log");
    ASSERT_TRUE(file.ok());
    LogWriter writer(file->get());
    for (const auto& r : records) ASSERT_TRUE(writer.AddRecord(r).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto file = env_->NewRandomAccessFile("log");
  ASSERT_TRUE(file.ok());
  LogReader reader(file->get());
  std::string record;
  for (const auto& expected : records) {
    ASSERT_TRUE(reader.ReadRecord(&record));
    EXPECT_EQ(record, expected);
  }
  EXPECT_FALSE(reader.ReadRecord(&record));
  EXPECT_TRUE(reader.status().ok());
}

TEST_F(WalTest, TornTailIsCleanEof) {
  Random rnd(8);
  {
    auto file = env_->NewWritableFile("log");
    ASSERT_TRUE(file.ok());
    LogWriter writer(file->get());
    ASSERT_TRUE(writer.AddRecord("complete-record").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    // A second record appended but never synced: after the "crash" only the
    // page-flushed prefix survives. Destroying the writer without Close in
    // the env model would persist it, so instead write a record that only
    // partially fits the synced prefix by never syncing it.
    ASSERT_TRUE(writer.AddRecord(rnd.NextString(100)).ok());
    // No Sync, no Close: release the writer handle leaktantly.
    file->release();  // Intentional: simulates power loss.
  }
  auto file = env_->NewRandomAccessFile("log");
  ASSERT_TRUE(file.ok());
  LogReader reader(file->get());
  std::string record;
  ASSERT_TRUE(reader.ReadRecord(&record));
  EXPECT_EQ(record, "complete-record");
  EXPECT_FALSE(reader.ReadRecord(&record));
  EXPECT_TRUE(reader.status().ok());
}

// ---------------------------------------------------------------------------
// SSTable
// ---------------------------------------------------------------------------

class SstableTest : public WalTest {};

TEST_F(SstableTest, BuildLookupIterate) {
  std::map<std::string, std::string> entries;
  Random rnd(9);
  for (int i = 0; i < 500; ++i) {
    entries["key" + std::to_string(10000 + i)] = rnd.NextString(100);
  }
  LsmOptions options;
  {
    auto file = env_->NewWritableFile("t.sst");
    ASSERT_TRUE(file.ok());
    TableBuilder builder(options, file->get());
    SequenceNumber seq = 1;
    for (const auto& [k, v] : entries) {
      ASSERT_TRUE(builder.Add(MakeInternalKey(k, seq++, kTypeValue), v).ok());
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE((*file)->Close().ok());
    EXPECT_EQ(builder.NumEntries(), entries.size());
  }

  BlockCache cache(1 << 20);
  auto file = env_->NewRandomAccessFile("t.sst");
  ASSERT_TRUE(file.ok());
  auto table = TableReader::Open(options, std::move(file).value(),
                                 *env_->GetFileSize("t.sst"), 1, &cache);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  // Point lookups.
  for (const auto& [k, v] : entries) {
    std::string value;
    bool found = false, deleted = false;
    ASSERT_TRUE((*table)
                    ->InternalGet(MakeInternalKey(k, kMaxSequenceNumber,
                                                  kTypeValue),
                                  &value, &found, &deleted)
                    .ok());
    ASSERT_TRUE(found) << k;
    EXPECT_FALSE(deleted);
    EXPECT_EQ(value, v);
  }
  // Absent keys: mostly short-circuited by the bloom filter.
  std::string value;
  bool found = true, deleted = false, skipped = false;
  ASSERT_TRUE((*table)
                  ->InternalGet(MakeInternalKey("nope", kMaxSequenceNumber,
                                                kTypeValue),
                                &value, &found, &deleted, &skipped)
                  .ok());
  EXPECT_FALSE(found);

  // Full scan equals the input.
  auto it = (*table)->NewIterator();
  auto expected = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), expected->first);
    EXPECT_EQ(it->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(SstableTest, IteratorSeekLandsOnLowerBound) {
  LsmOptions options;
  {
    auto file = env_->NewWritableFile("t.sst");
    ASSERT_TRUE(file.ok());
    TableBuilder builder(options, file->get());
    for (int i = 0; i < 100; i += 2) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%04d", i);
      ASSERT_TRUE(
          builder.Add(MakeInternalKey(key, 1, kTypeValue), "v").ok());
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  BlockCache cache(1 << 20);
  auto file = env_->NewRandomAccessFile("t.sst");
  ASSERT_TRUE(file.ok());
  auto table = TableReader::Open(options, std::move(file).value(),
                                 *env_->GetFileSize("t.sst"), 1, &cache);
  ASSERT_TRUE(table.ok());
  auto it = (*table)->NewIterator();
  it->Seek(MakeInternalKey("k0005", kMaxSequenceNumber, kTypeValue));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k0006");
}

// ---------------------------------------------------------------------------
// VersionEdit
// ---------------------------------------------------------------------------

TEST(VersionEditTest, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.has_log_number = true;
  edit.log_number = 7;
  edit.has_next_file_number = true;
  edit.next_file_number = 42;
  edit.has_last_sequence = true;
  edit.last_sequence = 99999;
  edit.deleted_files.emplace_back(2, 13);
  FileMetaData meta;
  meta.number = 14;
  meta.file_size = 4096;
  meta.smallest = MakeInternalKey("a", 5, kTypeValue);
  meta.largest = MakeInternalKey("z", 9, kTypeDeletion);
  edit.new_files.emplace_back(3, meta);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ(decoded.log_number, 7u);
  EXPECT_EQ(decoded.next_file_number, 42u);
  EXPECT_EQ(decoded.last_sequence, 99999u);
  ASSERT_EQ(decoded.deleted_files.size(), 1u);
  EXPECT_EQ(decoded.deleted_files[0], (std::pair<int, uint64_t>{2, 13}));
  ASSERT_EQ(decoded.new_files.size(), 1u);
  EXPECT_EQ(decoded.new_files[0].first, 3);
  EXPECT_EQ(decoded.new_files[0].second.smallest, meta.smallest);
}

TEST(VersionEditTest, GarbageRejected) {
  VersionEdit edit;
  EXPECT_TRUE(edit.DecodeFrom("\xff\xff\xff garbage").IsCorruption());
}

// ---------------------------------------------------------------------------
// LsmDb end-to-end
// ---------------------------------------------------------------------------

class LsmDbTest : public ::testing::Test {
 protected:
  LsmDbTest() { ResetEnv(); }

  void ResetEnv() {
    clock_.Reset();
    env_ = NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, TestGeometry(),
                     ssd::LatencyModel(), &clock_);
  }

  std::unique_ptr<LsmDb> OpenDb(const LsmOptions& options = SmallOptions()) {
    auto db = LsmDb::Open(env_.get(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

TEST_F(LsmDbTest, PutGetDelete) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k1", "v1").ok());
  ASSERT_TRUE(db->Put("k2", "v2").ok());
  EXPECT_EQ(*db->Get("k1"), "v1");
  ASSERT_TRUE(db->Put("k1", "v1b").ok());
  EXPECT_EQ(*db->Get("k1"), "v1b");
  ASSERT_TRUE(db->Delete("k1").ok());
  EXPECT_TRUE(db->Get("k1").status().IsNotFound());
  EXPECT_EQ(*db->Get("k2"), "v2");
  EXPECT_TRUE(db->Get("k3").status().IsNotFound());
}

TEST_F(LsmDbTest, GetAcrossFlushedTables) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("a", "old").ok());
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->Put("a", "new").ok());
  ASSERT_TRUE(db->Put("b", "bee").ok());
  ASSERT_TRUE(db->ForceFlush().ok());
  EXPECT_EQ(*db->Get("a"), "new");
  EXPECT_EQ(*db->Get("b"), "bee");
  EXPECT_GE(db->stats().memtable_flushes, 2u);
}

TEST_F(LsmDbTest, TombstoneShadowsAcrossLevels) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("key", "value").ok());
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->Delete("key").ok());
  ASSERT_TRUE(db->ForceFlush().ok());
  EXPECT_TRUE(db->Get("key").status().IsNotFound());
  ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  EXPECT_TRUE(db->Get("key").status().IsNotFound());
}

TEST_F(LsmDbTest, CompactionPreservesDataAcrossLevels) {
  auto db = OpenDb();
  Random rnd(11);
  std::map<std::string, std::string> model;
  // ~6 MB of data through a 64 KB write buffer: many flushes + compactions.
  for (int i = 0; i < 6000; ++i) {
    char key[24];
    std::snprintf(key, sizeof(key), "key%06llu",
                  static_cast<unsigned long long>(rnd.Uniform(3000)));
    const std::string value = rnd.NextString(1000);
    ASSERT_TRUE(db->Put(key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  EXPECT_GT(db->stats().compactions, 0u);
  // Data must have reached levels beyond L0.
  uint64_t deep_files = 0;
  for (int level = 1; level < db->versions().num_levels(); ++level) {
    deep_files += db->versions().NumLevelFiles(level);
  }
  EXPECT_GT(deep_files, 0u);
  for (const auto& [k, v] : model) {
    Result<std::string> got = db->Get(k);
    ASSERT_TRUE(got.ok()) << k << ": " << got.status().ToString();
    EXPECT_EQ(*got, v);
  }
}

TEST_F(LsmDbTest, IteratorMatchesModel) {
  auto db = OpenDb();
  Random rnd(12);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(500));
    if (rnd.Bernoulli(0.2)) {
      ASSERT_TRUE(db->Delete(key).ok());
      model.erase(key);
    } else {
      const std::string value = rnd.NextString(300);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
  }
  auto it = db->NewIterator();
  auto expected = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(it->key().ToString(), expected->first);
    EXPECT_EQ(it->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, model.end());

  // Seek semantics.
  it->Seek("key3");
  if (model.lower_bound("key3") == model.end()) {
    EXPECT_FALSE(it->Valid());
  } else {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), model.lower_bound("key3")->first);
  }
}

TEST_F(LsmDbTest, RecoversFromWalAfterCrash) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("persisted", "yes").ok());
    ASSERT_TRUE(db->Put("also", "this").ok());
    // WAL records were page-flushed? Not necessarily: force durability the
    // way the engine does — the destructor closes the WAL, persisting it.
  }
  auto db = OpenDb();
  EXPECT_EQ(*db->Get("persisted"), "yes");
  EXPECT_EQ(*db->Get("also"), "this");
}

TEST_F(LsmDbTest, RecoversManifestStateAfterCompactions) {
  std::map<std::string, std::string> model;
  {
    auto db = OpenDb();
    Random rnd(13);
    for (int i = 0; i < 3000; ++i) {
      const std::string key = "key" + std::to_string(i);
      const std::string value = rnd.NextString(500);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE(db->ForceFlush().ok());
    ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  }
  auto db = OpenDb();
  for (const auto& [k, v] : model) {
    Result<std::string> got = db->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST_F(LsmDbTest, CompactionExhibitsWriteAmplification) {
  auto db = OpenDb();
  Random rnd(14);
  for (int i = 0; i < 4000; ++i) {
    char key[24];
    std::snprintf(key, sizeof(key), "key%06d", i % 2000);
    ASSERT_TRUE(db->Put(key, rnd.NextString(1000)).ok());
  }
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  // Bytes rewritten by compaction exceed what the user ever wrote — the
  // effect the paper's Figure 5a quantifies at 20-25x for its workload.
  const auto& stats = db->stats();
  EXPECT_GT(stats.compaction_bytes_written, 0u);
  const uint64_t engine_writes =
      env_->host_bytes_appended();  // WAL + tables + manifest.
  EXPECT_GT(engine_writes, stats.user_bytes_ingested * 2);
}

TEST_F(LsmDbTest, EmptyKeyRejected) {
  auto db = OpenDb();
  EXPECT_TRUE(db->Put("", "v").IsInvalidArgument());
}

TEST_F(LsmDbTest, IteratorSurvivesReopen) {
  std::map<std::string, std::string> model;
  {
    auto db = OpenDb();
    Random rnd(15);
    for (int i = 0; i < 800; ++i) {
      const std::string key = "key" + std::to_string(rnd.Uniform(200));
      const std::string value = rnd.NextString(500);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE(db->ForceFlush().ok());
  }
  auto db = OpenDb();
  auto it = db->NewIterator();
  auto expected = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(it->key().ToString(), expected->first);
    EXPECT_EQ(it->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
}

TEST_F(LsmDbTest, WriteStallCounterTicksUnderL0Backlog) {
  LsmOptions options = SmallOptions();
  options.l0_compaction_trigger = 100;  // Let L0 pile up...
  options.l0_stall_trigger = 3;         // ...and stall early.
  auto db = OpenDb(options);
  Random rnd(16);
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 40; ++k) {
      ASSERT_TRUE(
          db->Put("key" + std::to_string(k), rnd.NextString(2000)).ok());
    }
    ASSERT_TRUE(db->ForceFlush().ok());
  }
  EXPECT_GT(db->stats().write_stall_events, 0u);
}

TEST_F(LsmDbTest, BloomFiltersShortCircuitAbsentKeys) {
  auto db = OpenDb();
  Random rnd(17);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), rnd.NextString(500)).ok());
  }
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  for (int i = 0; i < 500; ++i) {
    // Probes *inside* the stored key range, so a table is always consulted
    // and only the filter can short-circuit the data-block read.
    EXPECT_TRUE(db->Get("key" + std::to_string(i) + "_missing")
                    .status()
                    .IsNotFound());
  }
  // The overwhelming majority of absent probes never touched a data block.
  EXPECT_GT(db->stats().bloom_useful, 400u);
}

TEST_F(LsmDbTest, BlockCacheAbsorbsRepeatedReads) {
  auto db = OpenDb();
  Random rnd(18);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), rnd.NextString(1000)).ok());
  }
  ASSERT_TRUE(db->ForceFlush().ok());
  // First read loads the block from the device; repeats hit the cache.
  ASSERT_TRUE(db->Get("key7").ok());
  const uint64_t reads_after_first = env_->stats().host_pages_read;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(db->Get("key7").ok());
  EXPECT_EQ(env_->stats().host_pages_read, reads_after_first);
}

TEST_F(LsmDbTest, OverwriteHeavyWorkloadCompactsAway) {
  auto db = OpenDb();
  Random rnd(19);
  // 30 overwrites of the same small key set: compaction should keep only
  // the newest of each, so deep levels stay near the live data size.
  for (int round = 0; round < 30; ++round) {
    for (int k = 0; k < 100; ++k) {
      ASSERT_TRUE(
          db->Put("key" + std::to_string(k), rnd.NextString(2000)).ok());
    }
  }
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  const uint64_t live_bytes = 100 * 2100;
  EXPECT_LT(db->versions().TotalTableBytes(), live_bytes * 4);
  for (int k = 0; k < 100; ++k) {
    EXPECT_TRUE(db->Get("key" + std::to_string(k)).ok()) << k;
  }
}

TEST_F(LsmDbTest, DeleteEverythingShrinksToNothing) {
  auto db = OpenDb();
  Random rnd(20);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), rnd.NextString(1000)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db->Delete("key" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->ForceFlush().ok());
  ASSERT_TRUE(db->CompactUntilQuiescent().ok());
  auto it = db->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  // The values are gone; what remains is at most tombstone residue in
  // levels whose size never crossed a compaction budget.
  EXPECT_LT(db->versions().TotalTableBytes(), 300u << 10);
}

class LsmDbPropertyTest : public LsmDbTest,
                          public ::testing::WithParamInterface<uint64_t> {};

TEST_P(LsmDbPropertyTest, RandomOpsMatchModelAcrossReopen) {
  std::map<std::string, std::string> model;
  {
    auto db = OpenDb();
    Random rnd(GetParam());
    for (int i = 0; i < 5000; ++i) {
      const std::string key = "key" + std::to_string(rnd.Uniform(800));
      const uint64_t dice = rnd.Uniform(10);
      if (dice < 6) {
        const std::string value = rnd.NextString(200 + rnd.Uniform(800));
        ASSERT_TRUE(db->Put(key, value).ok());
        model[key] = value;
      } else if (dice < 8) {
        ASSERT_TRUE(db->Delete(key).ok());
        model.erase(key);
      } else {
        Result<std::string> got = db->Get(key);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_TRUE(got.status().IsNotFound()) << key;
        } else {
          ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
          EXPECT_EQ(*got, it->second);
        }
      }
    }
  }
  auto db = OpenDb();
  for (const auto& [k, v] : model) {
    Result<std::string> got = db->Get(k);
    ASSERT_TRUE(got.ok()) << k << ": " << got.status().ToString();
    EXPECT_EQ(*got, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmDbPropertyTest, ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace directload::lsm
