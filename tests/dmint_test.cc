// Distributed Mint over real processes: each storage node is a forked
// dmint_node (KvServer over its own engine), and a MintCoordinator speaks
// DLP1 to the fleet. Covers replicated writes with per-replica verification,
// the quorum path across a SIGKILLed replica, the full crash → restart →
// RepairNode → VerifyNodeComplete healing loop (paged over a deliberately
// tiny repair page), timer-fired hedged reads against a SIGSTOPped primary,
// and the heartbeat failure detector's down/up transitions.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mint/coordinator.h"
#include "rpc/client.h"
#include "server/node_process.h"

#ifndef DMINT_NODE_BINARY
#error "DMINT_NODE_BINARY must point at the dmint_node executable"
#endif

namespace directload::mint {
namespace {

using Clock = std::chrono::steady_clock;

std::string ValueOf(const std::string& key, uint64_t version) {
  return "value:" + key + "#" + std::to_string(version);
}

/// Polls `predicate` until it holds or `timeout_ms` passes.
bool WaitFor(int timeout_ms, const std::function<bool()>& predicate) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

/// One forked group of `replicas` dmint_node processes plus a coordinator
/// over them. Options are tuned for test speed: fast heartbeats, short
/// client deadlines.
class DmintTest : public ::testing::Test {
 protected:
  void StartFleet(int replicas, CoordinatorOptions options = {}) {
    nodes_.resize(replicas);
    std::vector<std::vector<NodeEndpoint>> groups(1);
    for (int i = 0; i < replicas; ++i) {
      ASSERT_TRUE(nodes_[i]
                      .Start(DMINT_NODE_BINARY, /*port=*/0, /*shards=*/2)
                      .ok())
          << "node " << i;
      NodeEndpoint endpoint;
      endpoint.port = nodes_[i].port();
      groups[0].push_back(endpoint);
    }
    options.replicas = replicas;
    options.heartbeat_interval_ms = 20;
    options.heartbeat_timeout_ms = 150;
    coordinator_ = std::make_unique<MintCoordinator>(groups, options);
    ASSERT_TRUE(coordinator_->Start().ok());
  }

  void TearDown() override {
    if (coordinator_ != nullptr) coordinator_->Stop();
    for (server::NodeProcess& node : nodes_) {
      if (node.running()) node.Kill();
    }
  }

  rpc::RpcClient DirectClient(int node_id) {
    return rpc::RpcClient("127.0.0.1", nodes_[node_id].port());
  }

  std::vector<server::NodeProcess> nodes_;
  std::unique_ptr<MintCoordinator> coordinator_;
};

TEST_F(DmintTest, ReplicatedWritesLandOnEveryReplica) {
  StartFleet(3);
  constexpr int kKeys = 20;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "rep:k" + std::to_string(i);
    MintCoordinator::WriteReport report;
    ASSERT_TRUE(coordinator_->Put(key, 1, ValueOf(key, 1), false, &report)
                    .ok());
    EXPECT_EQ(report.targets, 3);
    EXPECT_EQ(report.quorum, 2);  // Majority of 3.
    EXPECT_EQ(report.acks, 3);    // All replicas healthy: every ack lands.
  }

  // The coordinator serves every pair back.
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "rep:k" + std::to_string(i);
    Result<MintCoordinator::ReadResult> read = coordinator_->Get(key, 1);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->value, ValueOf(key, 1));
  }

  // Per-replica verification over direct clients: with replication factor
  // equal to the group size, every node must hold every pair — an acked
  // write is not "somewhere in the group", it is on its rendezvous
  // replicas, verifiably.
  for (int node = 0; node < 3; ++node) {
    rpc::RpcClient client = DirectClient(node);
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "rep:k" + std::to_string(i);
      Result<std::string> value = client.Get(key, 1);
      ASSERT_TRUE(value.ok())
          << "node " << node << " key " << key << ": "
          << value.status().ToString();
      EXPECT_EQ(*value, ValueOf(key, 1));
    }
    Result<rpc::HeartbeatInfo> hb = client.Heartbeat();
    ASSERT_TRUE(hb.ok());
    EXPECT_TRUE(hb->serving);
    EXPECT_EQ(hb->live_entries, static_cast<uint64_t>(kKeys));
  }
}

TEST_F(DmintTest, WritesAndReadsContinueAfterReplicaKill) {
  StartFleet(3);
  for (int i = 0; i < 10; ++i) {
    const std::string key = "pre:k" + std::to_string(i);
    ASSERT_TRUE(coordinator_->Put(key, 1, ValueOf(key, 1)).ok());
  }

  nodes_[2].Kill();

  // Writes keep succeeding on the surviving majority.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "post:k" + std::to_string(i);
    MintCoordinator::WriteReport report;
    ASSERT_TRUE(coordinator_->Put(key, 1, ValueOf(key, 1), false, &report)
                    .ok())
        << "write " << i << " after kill";
    EXPECT_EQ(report.acks, 2);
    EXPECT_EQ(report.quorum, 2);
  }

  // Reads keep answering — pre-kill and post-kill pairs alike.
  for (int i = 0; i < 10; ++i) {
    const std::string key = "pre:k" + std::to_string(i);
    Result<MintCoordinator::ReadResult> read = coordinator_->GetLatest(key);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->value, ValueOf(key, 1));
    EXPECT_NE(read->served_by, 2);  // The corpse cannot have answered.
  }
  for (int i = 0; i < 20; ++i) {
    const std::string key = "post:k" + std::to_string(i);
    Result<MintCoordinator::ReadResult> read = coordinator_->Get(key, 1);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
  }
  EXPECT_GT(coordinator_->counters().replica_write_failures, 0u);
}

TEST_F(DmintTest, AckedWritesSurviveKillRestartAndRepair) {
  CoordinatorOptions options;
  options.repair_page_pairs = 7;  // Force many pages: the cursor resumes.
  StartFleet(3, options);

  // Healthy-phase writes: acked by all three replicas.
  std::vector<std::pair<std::string, uint64_t>> acked;
  for (int i = 0; i < 60; ++i) {
    const std::string key = "h:k" + std::to_string(i);
    ASSERT_TRUE(coordinator_->Put(key, 1, ValueOf(key, 1)).ok());
    acked.emplace_back(key, 1);
  }

  // Crash one replica. Its simulated SSD lives in process memory, so this
  // node loses everything it stored.
  nodes_[1].Kill();

  // Degraded-phase writes: acked by the surviving quorum, never by node 1.
  for (int i = 0; i < 40; ++i) {
    const std::string key = "d:k" + std::to_string(i);
    MintCoordinator::WriteReport report;
    ASSERT_TRUE(
        coordinator_->Put(key, 2, ValueOf(key, 2), false, &report).ok());
    EXPECT_EQ(report.acks, 2);
    acked.emplace_back(key, 2);
  }

  // Restart empty, then heal over RPC: the coordinator inventories the
  // node, pages the peers' scans, and bulk-ingests what the node owns but
  // lacks — which is every pair, healthy-phase and degraded-phase alike.
  ASSERT_TRUE(nodes_[1].Restart().ok());
  Result<uint64_t> repaired = coordinator_->RepairNode(1);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(*repaired, acked.size());

  // The acceptance check: repair restored the replication factor,
  // verifiably, over RPC.
  Result<uint64_t> missing = coordinator_->VerifyNodeComplete(1);
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(*missing, 0u);

  // Zero acked writes lost, and the healed replica itself serves them.
  for (const auto& [key, version] : acked) {
    Result<MintCoordinator::ReadResult> read =
        coordinator_->Get(key, version);
    ASSERT_TRUE(read.ok()) << key << ": " << read.status().ToString();
    EXPECT_EQ(read->value, ValueOf(key, version));
  }
  rpc::RpcClient healed = DirectClient(1);
  Result<rpc::HeartbeatInfo> hb = healed.Heartbeat();
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(hb->live_entries, acked.size());
  for (size_t i = 0; i < acked.size(); i += 9) {
    Result<std::string> value = healed.Get(acked[i].first, acked[i].second);
    ASSERT_TRUE(value.ok()) << acked[i].first;
    EXPECT_EQ(*value, ValueOf(acked[i].first, acked[i].second));
  }
  EXPECT_EQ(coordinator_->counters().repair_pairs_copied, acked.size());
}

TEST_F(DmintTest, HedgedReadFiresWhenPrimaryStalls) {
  CoordinatorOptions options;
  options.hedge_default_delay_ms = 25;
  options.hedge_min_samples = 1'000'000;  // Pin the default hedge delay.
  // Keep the detector from demoting the frozen node: this test wants the
  // stall to be covered by the hedge *timer*, not by failure detection.
  options.suspect_after_misses = 1'000'000;
  options.down_after_misses = 1'000'001;
  StartFleet(3, options);

  ASSERT_TRUE(coordinator_->Put("stall:k", 1, "stall-value").ok());

  // With no latency samples and all nodes up, read order falls back to node
  // id — node 0 is the preferred replica. Freeze it: its kernel still
  // accepts TCP, but nothing ever answers, which is exactly the silent
  // stall hedging exists for (a dead node would fail fast and take the
  // failover path instead).
  ASSERT_TRUE(nodes_[0].Suspend().ok());

  Result<MintCoordinator::ReadResult> read = coordinator_->Get("stall:k", 1);
  ASSERT_TRUE(nodes_[0].Resume().ok());

  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->value, "stall-value");
  EXPECT_TRUE(read->hedged);
  EXPECT_NE(read->served_by, 0);  // A backup won, not the frozen primary.
  const MintCoordinator::Counters counters = coordinator_->counters();
  EXPECT_GE(counters.hedged_reads, 1u);
  EXPECT_GE(counters.hedge_wins, 1u);
}

TEST_F(DmintTest, DetectorTracksCrashAndRecovery) {
  CoordinatorOptions options;
  options.suspect_after_misses = 2;
  options.down_after_misses = 4;
  StartFleet(3, options);

  ASSERT_EQ(coordinator_->health(1), NodeHealth::kUp);
  nodes_[1].Kill();
  EXPECT_TRUE(WaitFor(5000, [&] {
    return coordinator_->health(1) == NodeHealth::kDown;
  })) << "detector never marked the killed node down";
  EXPECT_GT(coordinator_->counters().heartbeat_misses, 0u);

  ASSERT_TRUE(nodes_[1].Restart().ok());
  EXPECT_TRUE(WaitFor(5000, [&] {
    return coordinator_->health(1) == NodeHealth::kUp;
  })) << "detector never marked the restarted node up";
}

TEST(DmintRoutingTest, CoordinatorRoutingIsPureAndGroupScoped) {
  // Placement needs no live fleet: GroupOf/ReplicasOf are pure functions of
  // the topology, shared with MintCluster via mint/routing.h.
  std::vector<std::vector<NodeEndpoint>> groups(2);
  for (int g = 0; g < 2; ++g) {
    for (int r = 0; r < 3; ++r) {
      NodeEndpoint endpoint;
      endpoint.port = static_cast<uint16_t>(1000 + g * 3 + r);
      groups[g].push_back(endpoint);
    }
  }
  CoordinatorOptions options;
  options.replicas = 2;
  MintCoordinator coordinator(groups, options);

  bool used_group[2] = {false, false};
  for (int i = 0; i < 200; ++i) {
    const std::string key = "route:k" + std::to_string(i);
    const int group = coordinator.GroupOf(key);
    ASSERT_GE(group, 0);
    ASSERT_LT(group, 2);
    used_group[group] = true;
    const std::vector<int> replicas = coordinator.ReplicasOf(key);
    ASSERT_EQ(replicas.size(), 2u);
    for (int id : replicas) {
      // Replicas stay inside the key's group: ids 0..2 for group 0,
      // 3..5 for group 1.
      EXPECT_EQ(id / 3, group) << key;
    }
    EXPECT_NE(replicas[0], replicas[1]);
    // Deterministic placement: the same key routes the same way again.
    EXPECT_EQ(coordinator.ReplicasOf(key), replicas);
  }
  EXPECT_TRUE(used_group[0]);
  EXPECT_TRUE(used_group[1]);
}

}  // namespace
}  // namespace directload::mint
