// Wire-protocol tests: round-trips for every opcode, incremental decoding,
// and the corruption matrix the decoder must survive — truncation at every
// byte boundary, a flipped byte at every offset, and inflated length
// fields. The invariant throughout: the decoder never crashes, never reads
// past the bytes it was given, and never yields a frame from a damaged
// buffer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "rpc/protocol.h"

namespace directload::rpc {
namespace {

Frame SampleRequest(Opcode op) {
  Frame frame;
  frame.op = op;
  frame.request_id = 0x1122334455667788ull;
  frame.version = 42;
  frame.key = "url:example.com/index";
  switch (op) {
    case Opcode::kPut:
      frame.value = std::string(300, 'v');  // Length needs a 2-byte varint.
      frame.dedup = true;
      break;
    case Opcode::kGet:
      frame.latest = true;
      break;
    case Opcode::kBulkSlice:
      frame.key.clear();  // Bulk frames carry everything in the value field.
      frame.value = std::string(512, 's');
      break;
    default:
      break;
  }
  return frame;
}

std::string Encode(const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  return wire;
}

void ExpectSameFrame(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.response, b.response);
  EXPECT_EQ(a.dedup, b.dedup);
  EXPECT_EQ(a.latest, b.latest);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
}

const Opcode kAllOpcodes[] = {
    Opcode::kGet,       Opcode::kPut,       Opcode::kDel,
    Opcode::kStats,     Opcode::kPing,      Opcode::kBulkBegin,
    Opcode::kBulkSlice, Opcode::kBulkCommit, Opcode::kBulkAbort};

TEST(RpcProtocolTest, RoundTripsEveryOpcode) {
  for (Opcode op : kAllOpcodes) {
    Frame in = SampleRequest(op);
    FrameDecoder decoder;
    const std::string wire = Encode(in);
    decoder.Append(wire.data(), wire.size());
    Frame out;
    Result<bool> got = decoder.Next(&out);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(*got);
    ExpectSameFrame(in, out);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(RpcProtocolTest, RoundTripsResponses) {
  for (Opcode op : kAllOpcodes) {
    Frame response = MakeResponse(SampleRequest(op), Status::OK(), "payload");
    FrameDecoder decoder;
    const std::string wire = Encode(response);
    decoder.Append(wire.data(), wire.size());
    Frame out;
    Result<bool> got = decoder.Next(&out);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    EXPECT_TRUE(out.response);
    EXPECT_EQ(out.status, StatusCode::kOk);
    EXPECT_EQ(out.value, "payload");
    EXPECT_EQ(out.request_id, SampleRequest(op).request_id);
  }
}

TEST(RpcProtocolTest, ErrorResponseCarriesCodeAndMessage) {
  Frame response = MakeResponse(SampleRequest(Opcode::kGet),
                                Status::NotFound("no such key"));
  FrameDecoder decoder;
  const std::string wire = Encode(response);
  decoder.Append(wire.data(), wire.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(out.status, StatusCode::kNotFound);
  EXPECT_EQ(out.value, "no such key");
}

TEST(RpcProtocolTest, DecodesByteByByte) {
  // The worst fragmentation a stream can produce: one byte per Append.
  Frame in = SampleRequest(Opcode::kPut);
  const std::string wire = Encode(in);
  FrameDecoder decoder;
  Frame out;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Append(&wire[i], 1);
    Result<bool> got = decoder.Next(&out);
    ASSERT_TRUE(got.ok());
    ASSERT_FALSE(*got) << "frame completed " << (wire.size() - 1 - i)
                       << " bytes early";
  }
  decoder.Append(&wire[wire.size() - 1], 1);
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  ExpectSameFrame(in, out);
}

TEST(RpcProtocolTest, DecodesPipelinedFrames) {
  std::string wire;
  std::vector<Frame> frames;
  for (Opcode op : kAllOpcodes) {
    frames.push_back(SampleRequest(op));
    EncodeFrame(frames.back(), &wire);
  }
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  for (const Frame& expected : frames) {
    Frame out;
    Result<bool> got = decoder.Next(&out);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    ExpectSameFrame(expected, out);
  }
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

// ---------------------------------------------------------------------------
// Corruption matrix
// ---------------------------------------------------------------------------

TEST(RpcProtocolTest, TruncationAtEveryBoundaryNeverYieldsAFrame) {
  for (Opcode op : kAllOpcodes) {
    const std::string wire = Encode(SampleRequest(op));
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Append(wire.data(), cut);
      Frame out;
      Result<bool> got = decoder.Next(&out);
      // A strict prefix of a valid frame is never an error — the decoder
      // just waits for the rest — and never a frame.
      ASSERT_TRUE(got.ok()) << "cut at " << cut << ": "
                            << got.status().ToString();
      ASSERT_FALSE(*got) << "frame accepted from a " << cut << "-byte prefix";
    }
  }
}

TEST(RpcProtocolTest, FlippedByteAtEveryOffsetIsRejected) {
  for (Opcode op : kAllOpcodes) {
    const std::string wire = Encode(SampleRequest(op));
    for (size_t i = 0; i < wire.size(); ++i) {
      std::string damaged = wire;
      damaged[i] = static_cast<char>(damaged[i] ^ 0x5A);
      FrameDecoder decoder;
      decoder.Append(damaged.data(), damaged.size());
      Frame out;
      Result<bool> got = decoder.Next(&out);
      if (!got.ok()) {
        // Rejected: header damage is kProtocol, payload damage kCorruption.
        ASSERT_TRUE(got.status().IsProtocol() || got.status().IsCorruption())
            << "offset " << i << ": " << got.status().ToString();
        // The error must be sticky: the stream is unframeable from here on.
        Result<bool> again = decoder.Next(&out);
        ASSERT_FALSE(again.ok());
        ASSERT_EQ(again.status().code(), got.status().code());
        continue;
      }
      // The only acceptable non-error outcome is "need more bytes" (a flip
      // in the length field can inflate the frame past the buffer). It must
      // never be a completed frame.
      ASSERT_FALSE(*got) << "offset " << i
                         << ": decoder accepted a damaged frame";
    }
  }
}

TEST(RpcProtocolTest, InflatedLengthBeyondMaximumIsProtocolError) {
  const std::string wire = Encode(SampleRequest(Opcode::kPut));
  std::string damaged = wire;
  EncodeFixed32(&damaged[4], static_cast<uint32_t>(kMaxBodyBytes) + 1);
  FrameDecoder decoder;
  decoder.Append(damaged.data(), damaged.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsProtocol()) << got.status().ToString();
}

TEST(RpcProtocolTest, BulkSizedFramesRequireTheNegotiatedBound) {
  // A slice frame whose body sits in (kMaxBodyBytes, kMaxBulkBodyBytes] is a
  // protocol error on a fresh connection — the tight bound is the remote-OOM
  // defense — and decodes only once the peer has negotiated the bulk bound
  // (the server raises it when it acks kBulkBegin).
  Frame in;
  in.op = Opcode::kBulkSlice;
  in.request_id = 7;
  in.version = 3;
  in.value = std::string(kMaxBodyBytes + 1024, 's');
  const std::string wire = Encode(in);

  FrameDecoder strict;
  strict.Append(wire.data(), wire.size());
  Frame out;
  Result<bool> got = strict.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsProtocol()) << got.status().ToString();

  FrameDecoder negotiated;
  negotiated.set_max_body_bytes(kMaxBulkBodyBytes);
  negotiated.Append(wire.data(), wire.size());
  got = negotiated.Next(&out);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  ExpectSameFrame(in, out);

  // The negotiated ceiling is still a ceiling: a body one past
  // kMaxBulkBodyBytes is rejected even on a bulk connection.
  std::string inflated = wire;
  EncodeFixed32(&inflated[4], static_cast<uint32_t>(kMaxBulkBodyBytes) + 1);
  FrameDecoder ceiling;
  ceiling.set_max_body_bytes(kMaxBulkBodyBytes);
  ceiling.Append(inflated.data(), inflated.size());
  got = ceiling.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsProtocol()) << got.status().ToString();
}

TEST(RpcProtocolTest, InflatedLengthWithinBoundsFailsTheChecksum) {
  // Inflate the declared body by 8 bytes and pad the wire accordingly: the
  // decoder now checksums the wrong span and must reject the frame as
  // corrupt rather than trust the length field.
  const std::string wire = Encode(SampleRequest(Opcode::kGet));
  std::string damaged = wire;
  const uint32_t body_len = DecodeFixed32(&damaged[4]);
  EncodeFixed32(&damaged[4], body_len + 8);
  damaged.append(8, '\0');
  FrameDecoder decoder;
  decoder.Append(damaged.data(), damaged.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST(RpcProtocolTest, InflatedLengthNeverOverReads) {
  // Length claims more than the buffer holds: the decoder must wait, not
  // read past the bytes it was given.
  const std::string wire = Encode(SampleRequest(Opcode::kGet));
  std::string damaged = wire;
  const uint32_t body_len = DecodeFixed32(&damaged[4]);
  EncodeFixed32(&damaged[4], body_len + 1000);
  FrameDecoder decoder;
  decoder.Append(damaged.data(), damaged.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

TEST(RpcProtocolTest, BadMagicIsProtocolError) {
  const std::string wire = Encode(SampleRequest(Opcode::kPing));
  std::string damaged = wire;
  damaged[0] = 'X';
  FrameDecoder decoder;
  decoder.Append(damaged.data(), damaged.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsProtocol());
}

TEST(RpcProtocolTest, UnknownOpcodeFlagsOrStatusAreProtocolErrors) {
  struct Damage {
    size_t body_offset;
    char value;
  };
  // Repair the CRC after each body edit so the corruption check passes and
  // the *semantic* validation is what rejects the frame.
  const Damage damages[] = {
      {0, 99},                      // Unknown opcode.
      {1, 0x70},                    // Unknown flag bits.
      {2, 120},                     // Unknown status code.
      {3, 1},                       // Non-zero reserved byte.
  };
  for (const Damage& damage : damages) {
    std::string wire = Encode(SampleRequest(Opcode::kPing));
    const uint32_t body_len = DecodeFixed32(&wire[4]);
    wire[kHeaderBytes + damage.body_offset] = damage.value;
    const uint32_t crc =
        crc32c::Value(wire.data() + kHeaderBytes, body_len);
    EncodeFixed32(&wire[kHeaderBytes + body_len], crc32c::Mask(crc));
    FrameDecoder decoder;
    decoder.Append(wire.data(), wire.size());
    Frame out;
    Result<bool> got = decoder.Next(&out);
    ASSERT_FALSE(got.ok()) << "body offset " << damage.body_offset;
    EXPECT_TRUE(got.status().IsProtocol()) << got.status().ToString();
  }
}

TEST(RpcProtocolTest, OversizedInnerKeyLengthIsProtocolError) {
  // A key length claiming more bytes than the body holds must be caught by
  // the body parser (the CRC is valid — the sender really built this).
  Frame frame = SampleRequest(Opcode::kGet);
  std::string body;
  body.push_back(static_cast<char>(frame.op));
  body.push_back(static_cast<char>(kFlagLatest));
  body.push_back('\0');
  body.push_back('\0');
  PutFixed64(&body, frame.request_id);
  PutFixed64(&body, frame.version);
  PutVarint32(&body, 1000);  // Key length far beyond the body.
  body.append("short", 5);
  std::string wire;
  PutFixed32(&wire, kFrameMagic);
  PutFixed32(&wire, static_cast<uint32_t>(body.size()));
  wire += body;
  PutFixed32(&wire, crc32c::Mask(crc32c::Value(body.data(), body.size())));

  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsProtocol()) << got.status().ToString();
}

TEST(RpcProtocolTest, GarbageAfterValidFrameErrorsOnTheGarbage) {
  const std::string wire = Encode(SampleRequest(Opcode::kPut));
  std::string stream = wire + "this is not a frame header at all";
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);  // The valid frame decodes.
  got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());  // The garbage does not.
  EXPECT_TRUE(got.status().IsProtocol());
}

// ---------------------------------------------------------------------------
// kWriteBatch payload codecs.
// ---------------------------------------------------------------------------

std::vector<BatchOp> SampleBatchOps() {
  std::vector<BatchOp> ops(3);
  ops[0].version = 7;
  ops[0].key = "url:a";
  ops[0].value = std::string(300, 'v');  // Length needs a 2-byte varint.
  ops[1].is_del = true;
  ops[1].version = 7;
  ops[1].key = "url:b";
  ops[2].dedup = true;
  ops[2].version = 8;
  ops[2].key = "url:a";
  return ops;
}

TEST(RpcProtocolTest, BatchOpsRoundTrip) {
  const std::vector<BatchOp> in = SampleBatchOps();
  std::string wire;
  EncodeBatchOps(in, &wire);
  std::vector<BatchOp> out;
  ASSERT_TRUE(DecodeBatchOps(Slice(wire), &out).ok());
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].is_del, in[i].is_del) << i;
    EXPECT_EQ(out[i].dedup, in[i].dedup) << i;
    EXPECT_EQ(out[i].version, in[i].version) << i;
    EXPECT_EQ(out[i].key, in[i].key) << i;
    EXPECT_EQ(out[i].value, in[i].value) << i;
  }
}

TEST(RpcProtocolTest, BatchOpsTruncationAtEveryBoundaryIsProtocolError) {
  std::string wire;
  EncodeBatchOps(SampleBatchOps(), &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<BatchOp> out;
    Status s = DecodeBatchOps(Slice(wire.data(), cut), &out);
    EXPECT_TRUE(s.IsProtocol()) << "cut at " << cut << ": " << s.ToString();
  }
}

TEST(RpcProtocolTest, BatchOpsRejectUnknownKindFlagAndTrailingBytes) {
  std::vector<BatchOp> one(1);
  one[0].version = 1;
  one[0].key = "k";
  one[0].value = "v";
  std::string wire;
  EncodeBatchOps(one, &wire);
  std::vector<BatchOp> out;

  std::string bad_kind = wire;
  bad_kind[1] = 2;  // Byte 0 is the varint count; byte 1 the first op's kind.
  EXPECT_TRUE(DecodeBatchOps(Slice(bad_kind), &out).IsProtocol());

  std::string bad_flags = wire;
  bad_flags[2] = static_cast<char>(0x80);  // Undefined flag bit.
  EXPECT_TRUE(DecodeBatchOps(Slice(bad_flags), &out).IsProtocol());

  std::string trailing = wire + "x";
  EXPECT_TRUE(DecodeBatchOps(Slice(trailing), &out).IsProtocol());
}

TEST(RpcProtocolTest, HugeBatchCountsAreRejectedBeforeAllocation) {
  // An attacker-controlled count near 2^32 with a tiny payload must fail as
  // a protocol error up front — not reserve() gigabytes and die in OOM.
  std::string ops_wire;
  PutVarint32(&ops_wire, 0xFFFFFFFFu);
  std::vector<BatchOp> ops;
  EXPECT_TRUE(DecodeBatchOps(Slice(ops_wire), &ops).IsProtocol());

  std::string status_wire;
  PutVarint32(&status_wire, 0xFFFFFFFFu);
  std::vector<Status> statuses;
  EXPECT_TRUE(DecodeBatchStatuses(Slice(status_wire), &statuses).IsProtocol());

  // A count merely one past what the payload could hold is also rejected.
  std::vector<BatchOp> one(1);
  one[0].version = 1;
  one[0].key = "k";
  one[0].value = "v";
  std::string wire;
  EncodeBatchOps(one, &wire);
  std::string inflated;
  PutVarint32(&inflated, 2);
  inflated.append(wire.begin() + 1, wire.end());  // Keep the single op.
  EXPECT_TRUE(DecodeBatchOps(Slice(inflated), &ops).IsProtocol());
}

TEST(RpcProtocolTest, BatchStatusesRoundTripIncludingMessages) {
  std::vector<Status> in;
  in.push_back(Status::OK());
  in.push_back(Status::NotFound("no pair (k, 7)"));
  in.push_back(Status::InvalidArgument("empty key"));
  std::string wire;
  EncodeBatchStatuses(in, &wire);
  std::vector<Status> out;
  ASSERT_TRUE(DecodeBatchStatuses(Slice(wire), &out).ok());
  ASSERT_EQ(out.size(), in.size());
  EXPECT_TRUE(out[0].ok());
  EXPECT_TRUE(out[1].IsNotFound());
  EXPECT_EQ(out[1].message(), "no pair (k, 7)");
  EXPECT_TRUE(out[2].IsInvalidArgument());
  EXPECT_EQ(out[2].message(), "empty key");

  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<Status> partial;
    EXPECT_TRUE(DecodeBatchStatuses(Slice(wire.data(), cut), &partial)
                    .IsProtocol())
        << "cut at " << cut;
  }
}

TEST(RpcProtocolTest, WriteBatchOpcodeRoundTripsAsAFrame) {
  Frame in;
  in.op = Opcode::kWriteBatch;
  in.request_id = 99;
  EncodeBatchOps(SampleBatchOps(), &in.value);
  FrameDecoder decoder;
  const std::string wire = Encode(in);
  decoder.Append(wire.data(), wire.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  ExpectSameFrame(in, out);
}

TEST(RpcProtocolTest, HeartbeatInfoRoundTrips) {
  HeartbeatInfo in;
  in.serving = true;
  in.degraded = true;
  in.live_entries = 0x1122334455667788ull;
  std::string wire;
  EncodeHeartbeatInfo(in, &wire);
  HeartbeatInfo out;
  ASSERT_TRUE(DecodeHeartbeatInfo(Slice(wire), &out).ok());
  EXPECT_EQ(out.serving, in.serving);
  EXPECT_EQ(out.degraded, in.degraded);
  EXPECT_EQ(out.live_entries, in.live_entries);

  // Exactly-sized payload: both truncation and trailing bytes are protocol
  // errors, as is any undefined flag bit.
  HeartbeatInfo sink;
  EXPECT_TRUE(
      DecodeHeartbeatInfo(Slice(wire.data(), wire.size() - 1), &sink)
          .IsProtocol());
  EXPECT_TRUE(DecodeHeartbeatInfo(Slice(wire + "x"), &sink).IsProtocol());
  std::string bad_flags = wire;
  bad_flags[0] = static_cast<char>(0x80);
  EXPECT_TRUE(DecodeHeartbeatInfo(Slice(bad_flags), &sink).IsProtocol());
}

TEST(RpcProtocolTest, RepairScanRequestRoundTrips) {
  RepairScanRequest in;
  in.cursor.shard = 3;
  in.cursor.version = 41;
  in.cursor.key = std::string("cur\0sor", 7);  // Arbitrary bytes survive.
  in.cursor.resume = true;
  in.max_pairs = 777;
  in.keys_only = true;
  std::string wire;
  EncodeRepairScanRequest(in, &wire);
  RepairScanRequest out;
  ASSERT_TRUE(DecodeRepairScanRequest(Slice(wire), &out).ok());
  EXPECT_EQ(out.cursor.shard, in.cursor.shard);
  EXPECT_EQ(out.cursor.version, in.cursor.version);
  EXPECT_EQ(out.cursor.key, in.cursor.key);
  EXPECT_EQ(out.cursor.resume, in.cursor.resume);
  EXPECT_EQ(out.max_pairs, in.max_pairs);
  EXPECT_EQ(out.keys_only, in.keys_only);

  RepairScanRequest sink;
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_TRUE(
        DecodeRepairScanRequest(Slice(wire.data(), cut), &sink).IsProtocol())
        << "cut at " << cut;
  }
  EXPECT_TRUE(DecodeRepairScanRequest(Slice(wire + "x"), &sink).IsProtocol());
}

TEST(RpcProtocolTest, RepairPageRoundTripsWithAndWithoutCursor) {
  RepairPage in;
  for (int i = 0; i < 3; ++i) {
    RepairPair pair;
    pair.key = "k" + std::to_string(i);
    pair.version = 10 + i;
    pair.value = i == 1 ? std::string() : "v" + std::to_string(i);
    in.pairs.push_back(pair);
  }
  in.done = false;
  in.next.shard = 1;
  in.next.version = 12;
  in.next.key = "k2";
  in.next.resume = true;
  std::string wire;
  EncodeRepairPage(in, &wire);
  RepairPage out;
  ASSERT_TRUE(DecodeRepairPage(Slice(wire), &out).ok());
  ASSERT_EQ(out.pairs.size(), in.pairs.size());
  for (size_t i = 0; i < in.pairs.size(); ++i) {
    EXPECT_EQ(out.pairs[i].key, in.pairs[i].key) << i;
    EXPECT_EQ(out.pairs[i].version, in.pairs[i].version) << i;
    EXPECT_EQ(out.pairs[i].value, in.pairs[i].value) << i;
  }
  EXPECT_FALSE(out.done);
  EXPECT_EQ(out.next.shard, in.next.shard);
  EXPECT_EQ(out.next.version, in.next.version);
  EXPECT_EQ(out.next.key, in.next.key);
  EXPECT_TRUE(out.next.resume);

  // Terminal page: done flag set, no trailing cursor on the wire.
  RepairPage last;
  last.done = true;
  std::string last_wire;
  EncodeRepairPage(last, &last_wire);
  RepairPage last_out;
  ASSERT_TRUE(DecodeRepairPage(Slice(last_wire), &last_out).ok());
  EXPECT_TRUE(last_out.done);
  EXPECT_TRUE(last_out.pairs.empty());

  RepairPage sink;
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_TRUE(DecodeRepairPage(Slice(wire.data(), cut), &sink).IsProtocol())
        << "cut at " << cut;
  }
  EXPECT_TRUE(DecodeRepairPage(Slice(wire + "x"), &sink).IsProtocol());
}

TEST(RpcProtocolTest, HugeRepairPairCountsAreRejectedBeforeAllocation) {
  // flags byte + an absurd pair count over a tiny payload: the decoder must
  // bound the count against the remaining bytes before reserving.
  std::string wire;
  wire.push_back(0);  // flags: not done... but then a cursor is expected;
  PutVarint32(&wire, 0x0fffffff);
  RepairPage sink;
  Status s = DecodeRepairPage(Slice(wire), &sink);
  EXPECT_TRUE(s.IsProtocol()) << s.ToString();
}

TEST(RpcProtocolTest, NewOpcodesAreValidAndBoundIsEnforced) {
  // kHeartbeat and kRepairScan decode as frames; one past the highest
  // opcode is still rejected at the frame layer.
  for (Opcode op : {Opcode::kHeartbeat, Opcode::kRepairScan}) {
    Frame in = SampleRequest(op);
    FrameDecoder decoder;
    const std::string wire = Encode(in);
    decoder.Append(wire.data(), wire.size());
    Frame out;
    Result<bool> got = decoder.Next(&out);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(*got);
    EXPECT_EQ(out.op, op);
  }

  // Re-encode with the enum flipped one past the valid range: the CRC is
  // computed over the patched body, so the failure is the opcode check, not
  // a checksum mismatch.
  Frame in = SampleRequest(Opcode::kRepairScan);
  in.op = static_cast<Opcode>(static_cast<uint8_t>(Opcode::kRepairScan) + 1);
  std::string bad_wire = Encode(in);
  FrameDecoder decoder;
  decoder.Append(bad_wire.data(), bad_wire.size());
  Frame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsProtocol()) << got.status().ToString();
}

}  // namespace
}  // namespace directload::rpc
