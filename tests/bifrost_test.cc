#include <gtest/gtest.h>

#include <map>

#include "bifrost/dedup.h"
#include "bifrost/delivery.h"
#include "bifrost/slicer.h"
#include "common/sim_clock.h"
#include "index/builders.h"
#include "index/corpus.h"
#include "net/fluid_network.h"

namespace directload::bifrost {
namespace {

webindex::CorpusOptions SmallCorpus() {
  webindex::CorpusOptions o;
  o.num_docs = 100;
  o.vocab_size = 1000;
  o.terms_per_doc = 10;
  o.abstract_bytes = 1024;
  o.seed = 3;
  return o;
}

// ---------------------------------------------------------------------------
// Deduplication
// ---------------------------------------------------------------------------

TEST(DedupTest, FirstVersionShipsEverything) {
  webindex::Corpus corpus(SmallCorpus());
  Deduplicator dedup;
  DedupStats stats;
  std::vector<ShippedPair> shipped =
      dedup.Process(webindex::BuildSummaryIndex(corpus), &stats);
  EXPECT_EQ(stats.pairs_deduped, 0u);
  EXPECT_EQ(stats.bytes_shipped, stats.bytes_total);
  EXPECT_DOUBLE_EQ(stats.dedup_ratio(), 0.0);
  for (const ShippedPair& pair : shipped) EXPECT_FALSE(pair.dedup);
}

TEST(DedupTest, UnchangedValuesAreStripped) {
  webindex::Corpus corpus(SmallCorpus());
  Deduplicator dedup;
  dedup.Process(webindex::BuildSummaryIndex(corpus), nullptr);
  corpus.AdvanceVersionWithChangeRate(0.0);  // Nothing changed.
  DedupStats stats;
  std::vector<ShippedPair> shipped =
      dedup.Process(webindex::BuildSummaryIndex(corpus), &stats);
  EXPECT_EQ(stats.pairs_deduped, stats.pairs_total);
  for (const ShippedPair& pair : shipped) {
    EXPECT_TRUE(pair.dedup);
    EXPECT_TRUE(pair.value.empty());
  }
  // Only keys ship: the bytes saved are nearly everything.
  EXPECT_GT(stats.dedup_ratio(), 0.9);
}

TEST(DedupTest, RatioTracksChangeRate) {
  webindex::Corpus corpus(SmallCorpus());
  Deduplicator dedup;
  dedup.Process(webindex::BuildSummaryIndex(corpus), nullptr);
  corpus.AdvanceVersionWithChangeRate(0.3);  // Paper's ~70% unchanged.
  DedupStats stats;
  dedup.Process(webindex::BuildSummaryIndex(corpus), &stats);
  const double deduped_fraction =
      static_cast<double>(stats.pairs_deduped) /
      static_cast<double>(stats.pairs_total);
  EXPECT_NEAR(deduped_fraction, 0.7, 0.12);
  EXPECT_GT(stats.dedup_ratio(), 0.4);
}

TEST(DedupTest, DisabledPassesThrough) {
  webindex::Corpus corpus(SmallCorpus());
  Deduplicator dedup(/*enabled=*/false);
  dedup.Process(webindex::BuildSummaryIndex(corpus), nullptr);
  corpus.AdvanceVersionWithChangeRate(0.0);
  DedupStats stats;
  dedup.Process(webindex::BuildSummaryIndex(corpus), &stats);
  EXPECT_EQ(stats.pairs_deduped, 0u);
  EXPECT_EQ(stats.bytes_shipped, stats.bytes_total);
}

TEST(DedupTest, ChangedValueShipsAgainAfterDedup) {
  webindex::IndexDataset v1;
  v1.version = 1;
  v1.pairs.push_back(webindex::KvPair{"k", "value-a"});
  webindex::IndexDataset v2 = v1;
  v2.version = 2;
  webindex::IndexDataset v3;
  v3.version = 3;
  v3.pairs.push_back(webindex::KvPair{"k", "value-b"});

  Deduplicator dedup;
  dedup.Process(v1, nullptr);
  std::vector<ShippedPair> s2 = dedup.Process(v2, nullptr);
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_TRUE(s2[0].dedup);
  std::vector<ShippedPair> s3 = dedup.Process(v3, nullptr);
  ASSERT_EQ(s3.size(), 1u);
  EXPECT_FALSE(s3[0].dedup);
  EXPECT_EQ(s3[0].value, "value-b");
}

// ---------------------------------------------------------------------------
// Slicing
// ---------------------------------------------------------------------------

std::vector<ShippedPair> SamplePairs(int n) {
  std::vector<ShippedPair> pairs;
  for (int i = 0; i < n; ++i) {
    ShippedPair p;
    p.key = "key" + std::to_string(i);
    p.dedup = i % 3 == 0;
    if (!p.dedup) p.value = std::string(500, static_cast<char>('a' + i % 26));
    pairs.push_back(std::move(p));
  }
  return pairs;
}

TEST(SlicerTest, PackUnpackRoundTrip) {
  const std::vector<ShippedPair> pairs = SamplePairs(50);
  const std::vector<SlicePacket> slices =
      PackSlices(pairs, webindex::IndexType::kSummary, 7, /*slice_bytes=*/4096);
  EXPECT_GT(slices.size(), 1u);
  std::vector<ShippedPair> unpacked;
  std::vector<ShippedPair> all;
  for (const SlicePacket& slice : slices) {
    EXPECT_TRUE(VerifySlice(slice));
    EXPECT_EQ(slice.version, 7u);
    EXPECT_EQ(slice.type, webindex::IndexType::kSummary);
    ASSERT_TRUE(UnpackSlice(slice, &unpacked).ok());
    all.insert(all.end(), unpacked.begin(), unpacked.end());
  }
  ASSERT_EQ(all.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(all[i].key, pairs[i].key);
    EXPECT_EQ(all[i].value, pairs[i].value);
    EXPECT_EQ(all[i].dedup, pairs[i].dedup);
  }
}

TEST(SlicerTest, SliceIdsAreSequential) {
  const std::vector<SlicePacket> slices =
      PackSlices(SamplePairs(50), webindex::IndexType::kInverted, 1, 4096,
                 /*first_slice_id=*/100);
  for (size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].slice_id, 100 + i);
  }
}

TEST(SlicerTest, CorruptionDetectedByChecksum) {
  std::vector<SlicePacket> slices =
      PackSlices(SamplePairs(10), webindex::IndexType::kSummary, 1, 1 << 20);
  ASSERT_EQ(slices.size(), 1u);
  Random rng(1);
  CorruptSlice(&slices[0], &rng);
  EXPECT_FALSE(VerifySlice(slices[0]));
  std::vector<ShippedPair> pairs;
  EXPECT_TRUE(UnpackSlice(slices[0], &pairs).IsCorruption());
}

TEST(SlicerTest, EmptyInputYieldsNoSlices) {
  EXPECT_TRUE(PackSlices({}, webindex::IndexType::kSummary, 1, 4096).empty());
}

// ---------------------------------------------------------------------------
// Delivery
// ---------------------------------------------------------------------------

TEST(DeliveryTest, DestinationsMatchPaperLayout) {
  // Inverted: all six data centers. Summary: one per region (three).
  EXPECT_EQ(DestinationsFor(webindex::IndexType::kInverted).size(), 6u);
  EXPECT_EQ(DestinationsFor(webindex::IndexType::kSummary),
            (std::vector<int>{0, 2, 4}));
}

DeliveryOptions FastDelivery() {
  DeliveryOptions o;
  o.backbone_bytes_per_sec = 50e6;
  o.interregion_bytes_per_sec = 30e6;
  o.regional_bytes_per_sec = 100e6;
  o.tick_seconds = 0.1;
  return o;
}

TEST(DeliveryTest, DeliversEverySliceToEveryDestination) {
  SimClock clock;
  DeliveryService service(&clock, FastDelivery());
  const std::vector<SlicePacket> summary =
      PackSlices(SamplePairs(40), webindex::IndexType::kSummary, 1, 8192);
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(40), webindex::IndexType::kInverted, 1, 8192);

  std::map<int, int> arrivals;  // dc -> count
  DeliveryReport report = service.DeliverVersion(
      summary, inverted,
      [&](int dc, const SlicePacket& slice) {
        EXPECT_TRUE(VerifySlice(slice));
        ++arrivals[dc];
      });
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.deliveries_total,
            summary.size() * 3 + inverted.size() * 6);
  EXPECT_EQ(report.retransmissions, 0u);
  EXPECT_GT(report.update_time_seconds, 0.0);
  EXPECT_EQ(report.miss_ratio, 0.0);
  // All six DCs got inverted slices; summary only at DCs 0, 2, 4.
  for (int dc = 0; dc < kNumDataCenters; ++dc) {
    const int expected = static_cast<int>(inverted.size()) +
                         (dc % 2 == 0 ? static_cast<int>(summary.size()) : 0);
    EXPECT_EQ(arrivals[dc], expected) << "dc " << dc;
  }
}

TEST(DeliveryTest, CorruptionCausesRetransmissionButStillCompletes) {
  SimClock clock;
  DeliveryOptions options = FastDelivery();
  options.corruption_prob = 0.1;
  DeliveryService service(&clock, options);
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(40), webindex::IndexType::kInverted, 1, 8192);
  DeliveryReport report = service.DeliverVersion({}, inverted, nullptr);
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.retransmissions, 0u);
  EXPECT_EQ(report.miss_ratio, 0.0);
}

TEST(DeliveryTest, CongestedBackboneTriggersDetours) {
  SimClock clock;
  DeliveryOptions options = FastDelivery();
  options.monitor_interval_seconds = 0.2;
  DeliveryService service(&clock, options);
  // Region 0's backbone is nearly saturated by other traffic; the monitor
  // should route region-0-bound slices through another relay group.
  service.SetBackboneBackground(0, 0.95);
  // Warm the monitor so predictions reflect the congestion.
  const std::vector<SlicePacket> warmup =
      PackSlices(SamplePairs(10), webindex::IndexType::kInverted, 1, 8192);
  service.DeliverVersion({}, warmup, nullptr);
  const uint64_t detours_before = service.detours();
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(60), webindex::IndexType::kInverted, 2, 8192);
  DeliveryReport report = service.DeliverVersion({}, inverted, nullptr);
  ASSERT_TRUE(report.completed);
  EXPECT_GT(service.detours(), detours_before);
}

TEST(DeliveryTest, MoreDataTakesLonger) {
  SimClock clock1, clock2;
  DeliveryService small_service(&clock1, FastDelivery());
  DeliveryService large_service(&clock2, FastDelivery());
  const std::vector<SlicePacket> small =
      PackSlices(SamplePairs(20), webindex::IndexType::kInverted, 1, 8192);
  const std::vector<SlicePacket> large =
      PackSlices(SamplePairs(200), webindex::IndexType::kInverted, 1, 8192);
  DeliveryReport rs = small_service.DeliverVersion({}, small, nullptr);
  DeliveryReport rl = large_service.DeliverVersion({}, large, nullptr);
  ASSERT_TRUE(rs.completed);
  ASSERT_TRUE(rl.completed);
  EXPECT_GT(rl.update_time_seconds, rs.update_time_seconds);
}

TEST(DeliveryTest, RelayNodeFailuresShrinkGroupBandwidth) {
  SimClock clock;
  DeliveryService service(&clock, FastDelivery());
  EXPECT_EQ(service.relay_nodes_up(0), 24);
  const double before = service.network().link(0).available();
  // Half of region 0's relay group dies.
  ASSERT_TRUE(service.FailRelayNodes(0, 12).ok());
  EXPECT_EQ(service.relay_nodes_up(0), 12);
  const double after = service.network().link(0).available();
  EXPECT_NEAR(after, before / 2, before * 0.01);
  // Restore them; capacity returns.
  ASSERT_TRUE(service.RestoreRelayNodes(0, 12).ok());
  EXPECT_NEAR(service.network().link(0).available(), before, before * 0.01);
  // Sanity on the guards.
  EXPECT_TRUE(service.FailRelayNodes(0, 24).IsInvalidArgument());
  EXPECT_TRUE(service.RestoreRelayNodes(0, 1).IsInvalidArgument());
  EXPECT_TRUE(service.FailRelayNodes(9, 1).IsInvalidArgument());
}

TEST(DeliveryTest, RelayFailuresComposeWithBackgroundLoad) {
  SimClock clock;
  DeliveryService service(&clock, FastDelivery());
  const double capacity = service.network().link(0).capacity_bytes_per_sec;
  ASSERT_TRUE(service.FailRelayNodes(0, 12).ok());  // 50% derating.
  service.SetBackboneBackground(0, 0.5);            // Plus 50% load.
  EXPECT_NEAR(service.network().link(0).available(), capacity * 0.25,
              capacity * 0.01);
}

TEST(DeliveryTest, RelayFailuresSlowDeliveryToThatRegion) {
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(200), webindex::IndexType::kInverted, 1, 8192);
  DeliveryOptions options = FastDelivery();
  // Slow enough that transfers span many ticks, so derating is measurable.
  options.backbone_bytes_per_sec = 200e3;
  options.interregion_bytes_per_sec = 120e3;
  options.regional_bytes_per_sec = 800e3;
  SimClock c1, c2;
  DeliveryService healthy(&c1, options);
  DeliveryService degraded(&c2, options);
  // Most of every relay group fails: no healthy detour exists.
  for (int r = 0; r < kNumRegions; ++r) {
    ASSERT_TRUE(degraded.FailRelayNodes(r, 18).ok());
  }
  DeliveryReport fast = healthy.DeliverVersion({}, inverted, nullptr);
  DeliveryReport slow = degraded.DeliverVersion({}, inverted, nullptr);
  ASSERT_TRUE(fast.completed);
  ASSERT_TRUE(slow.completed);
  EXPECT_GT(slow.update_time_seconds, 2 * fast.update_time_seconds);
}

TEST(DeliveryTest, GenerationWindowStaggersArrivals) {
  SimClock clock;
  DeliveryOptions options = FastDelivery();
  options.generation_window_seconds = 10.0;
  DeliveryService service(&clock, options);
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(40), webindex::IndexType::kInverted, 1, 8192);
  DeliveryReport report = service.DeliverVersion({}, inverted, nullptr);
  ASSERT_TRUE(report.completed);
  // Even on a fast network the last slice cannot arrive before it was
  // generated at the end of the window.
  EXPECT_GE(report.update_time_seconds, 9.0);
}

TEST(NetCancelTest, CancelledFlowNeverCompletes) {
  SimClock clock;
  net::FluidNetwork fluid(&clock);
  const int a = fluid.AddNode("a");
  const int b = fluid.AddNode("b");
  const int link = fluid.AddLink(a, b, 1000.0);
  const uint64_t id = fluid.StartFlow({link}, 5000.0, 0);
  fluid.Advance(1.0, nullptr);
  EXPECT_NEAR(fluid.FlowBytesLeft(id), 4000.0, 1.0);
  EXPECT_TRUE(fluid.CancelFlow(id));
  EXPECT_FALSE(fluid.CancelFlow(id));  // Not cancellable twice.
  int completions = 0;
  fluid.AdvanceUntilIdle(60.0, 1.0, [&](const net::Flow&) { ++completions; });
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(fluid.active_flows(), 0u);
}

TEST(DeliveryTest, StuckTransfersAreRepairedAndStillComplete) {
  SimClock clock;
  DeliveryOptions options = FastDelivery();
  options.backbone_bytes_per_sec = 50e3;
  options.interregion_bytes_per_sec = 50e3;
  options.regional_bytes_per_sec = 200e3;
  // The monitor is stale (it never re-samples within the run), so the
  // scheduler keeps picking the direct path even though region 0's backbone
  // is almost dead — exactly the situation the repair timeout exists for.
  options.monitor_interval_seconds = 1e9;
  options.repair_timeout_seconds = 2.0;
  DeliveryService service(&clock, options);
  service.network().SetBackground(0, 0.0);  // Seed spare snapshots fresh...
  DeliveryReport warmup = service.DeliverVersion(
      {}, PackSlices(SamplePairs(2), webindex::IndexType::kInverted, 9, 16384),
      nullptr);
  ASSERT_TRUE(warmup.completed);  // ...so predictions now say "all healthy".
  // Region 0's backbone collapses: direct transfers to region 0 stall past
  // the repair timeout, get aborted, and the re-requests detour.
  service.network().SetBackground(0, 0.995);
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(40), webindex::IndexType::kInverted, 1, 16384);
  DeliveryReport report = service.DeliverVersion({}, inverted, nullptr);
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.repairs, 0u);
  EXPECT_EQ(report.deliveries_total, inverted.size() * 6);
}

TEST(DeliveryTest, EmptyVersionCompletesInstantly) {
  SimClock clock;
  DeliveryService service(&clock, FastDelivery());
  DeliveryReport report = service.DeliverVersion({}, {}, nullptr);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.deliveries_total, 0u);
  EXPECT_EQ(report.update_time_seconds, 0.0);
}

TEST(DeliveryTest, BytesTransmittedScaleWithHopsAndDestinations) {
  SimClock clock;
  DeliveryService service(&clock, FastDelivery());
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(20), webindex::IndexType::kInverted, 1, 1 << 20);
  uint64_t slice_bytes = 0;
  for (const SlicePacket& s : inverted) slice_bytes += s.bytes();
  DeliveryReport report = service.DeliverVersion({}, inverted, nullptr);
  ASSERT_TRUE(report.completed);
  // 6 destinations x at least 2 hops each.
  EXPECT_GE(report.bytes_transmitted, slice_bytes * 6 * 2);
  EXPECT_LE(report.bytes_transmitted, slice_bytes * 6 * 3);
}

TEST(DeliveryTest, MissRatioReflectsDeadline) {
  SimClock clock;
  DeliveryOptions options = FastDelivery();
  options.miss_deadline_seconds = 0.05;  // Absurdly tight: everything late.
  DeliveryService service(&clock, options);
  const std::vector<SlicePacket> inverted =
      PackSlices(SamplePairs(40), webindex::IndexType::kInverted, 1, 8192);
  DeliveryReport report = service.DeliverVersion({}, inverted, nullptr);
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.miss_ratio, 0.5);
}

}  // namespace
}  // namespace directload::bifrost
