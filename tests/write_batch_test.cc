// WriteBatch + group commit: ordering and per-op status semantics of
// QinDb::Write, batch-internal visibility (a Del can target a Put from the
// same batch), DropVersion inside a batch, the group_commit=false legacy
// path agreeing with the batched path, and a concurrency property — readers
// racing multi-op batches never observe a torn version chain (a dedup
// version resolvable before its base value landed, a Corruption status, or
// wrong bytes).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "qindb/write_batch.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

ssd::Geometry TestGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 4096;  // 128 MiB device.
  return g;
}

struct Harness {
  SimClock clock;
  std::unique_ptr<ssd::SsdEnv> env;
  std::unique_ptr<QinDb> db;

  explicit Harness(QinDbOptions options = {}) {
    if (options.num_shards == 0) options.num_shards = 1;
    env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, TestGeometry(),
                    ssd::LatencyModel(), &clock);
    auto opened = QinDb::Open(env.get(), options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(opened).value();
  }
};

TEST(WriteBatchTest, OpsApplyInOrderWithPerOpStatuses) {
  Harness h;
  WriteBatch batch;
  batch.Put("a", 1, "va");
  batch.Put("b", 1, "vb");
  batch.Del("a", 1);
  batch.Put("a", 2, "va2");
  ASSERT_TRUE(h.db->Write(batch).ok());
  ASSERT_EQ(batch.statuses().size(), 4u);
  for (const Status& s : batch.statuses()) EXPECT_TRUE(s.ok());

  EXPECT_TRUE(h.db->Get("a", 1).status().IsNotFound());  // Del won.
  Result<std::string> b = h.db->Get("b", 1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "vb");
  Result<std::string> a2 = h.db->Get("a", 2);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(*a2, "va2");
}

TEST(WriteBatchTest, BadOpFailsAloneWithoutPoisoningTheBatch) {
  Harness h;
  WriteBatch batch;
  batch.Put("", 1, "empty key is invalid");
  batch.Put("good", 1, "v");
  Status s = h.db->Write(batch);
  EXPECT_TRUE(s.IsInvalidArgument());  // First failing per-op status.
  ASSERT_EQ(batch.statuses().size(), 2u);
  EXPECT_TRUE(batch.statuses()[0].IsInvalidArgument());
  EXPECT_TRUE(batch.statuses()[1].ok());
  Result<std::string> got = h.db->Get("good", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  EXPECT_FALSE(h.db->degraded());  // A bad op is the caller's fault, not IO.
}

TEST(WriteBatchTest, DelSeesEarlierPutInTheSameBatch) {
  Harness h;
  WriteBatch batch;
  batch.Put("k", 1, "v");
  batch.Del("k", 1);
  ASSERT_TRUE(h.db->Write(batch).ok());
  EXPECT_TRUE(h.db->Get("k", 1).status().IsNotFound());
}

TEST(WriteBatchTest, DelOfMissingPairReportsNotFoundAlone) {
  Harness h;
  WriteBatch batch;
  batch.Put("present", 1, "v");
  batch.Del("absent", 1);
  Status s = h.db->Write(batch);
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_EQ(batch.statuses().size(), 2u);
  EXPECT_TRUE(batch.statuses()[0].ok());
  EXPECT_TRUE(batch.statuses()[1].IsNotFound());
  EXPECT_TRUE(h.db->Get("present", 1).ok());
}

TEST(WriteBatchTest, DropVersionCoversIndexAndSameBatchPairs) {
  Harness h;
  ASSERT_TRUE(h.db->Put("old", 7, "from before the batch").ok());
  WriteBatch batch;
  batch.Put("fresh", 7, "from inside the batch");
  batch.DropVersion(7);
  ASSERT_TRUE(h.db->Write(batch).ok());
  EXPECT_EQ(batch.dropped(1), 2u);  // Both the indexed and the in-batch pair.
  EXPECT_TRUE(h.db->Get("old", 7).status().IsNotFound());
  EXPECT_TRUE(h.db->Get("fresh", 7).status().IsNotFound());
}

TEST(WriteBatchTest, EmptyBatchIsANoOp) {
  Harness h;
  WriteBatch batch;
  EXPECT_TRUE(h.db->Write(batch).ok());
  EXPECT_TRUE(batch.statuses().empty());
}

TEST(WriteBatchTest, UngroupedPathMatchesGroupedSemantics) {
  QinDbOptions options;
  options.num_shards = 1;
  options.group_commit = false;
  Harness h(options);
  WriteBatch batch;
  batch.Put("k", 1, "v1");
  batch.Put("k", 2, Slice(), /*dedup=*/true);
  batch.Del("missing", 1);
  Status s = h.db->Write(batch);
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_EQ(batch.statuses().size(), 3u);
  EXPECT_TRUE(batch.statuses()[0].ok());
  EXPECT_TRUE(batch.statuses()[1].ok());
  EXPECT_TRUE(batch.statuses()[2].IsNotFound());
  Result<std::string> traced = h.db->Get("k", 2);
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(*traced, "v1");  // Dedup resolved through the same-batch base.
}

TEST(WriteBatchTest, BatchReusableAfterClear) {
  Harness h;
  WriteBatch batch;
  batch.Put("k", 1, "v");
  ASSERT_TRUE(h.db->Write(batch).ok());
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  batch.Put("k", 2, "v2");
  ASSERT_TRUE(h.db->Write(batch).ok());
  ASSERT_EQ(batch.statuses().size(), 1u);
  Result<std::string> got = h.db->Get("k", 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v2");
}

// ---------------------------------------------------------------------------
// Property: concurrent readers never see a torn version chain.
// ---------------------------------------------------------------------------
//
// Each writer owns one key and commits version groups of three as a single
// batch: a base value at 3g+1 and dedup markers at 3g+2 and 3g+3. The batch
// applies base-first, so once ANY version of group g is acked, reading any
// version of any acked group must return exactly the group's base value —
// never Corruption (a dedup marker whose base is missing would be an
// unresolvable chain) and never another group's bytes. Readers also probe
// one group ahead of the ack frontier: mid-commit visibility is allowed to
// say NotFound or succeed, but nothing else.

constexpr int kPropWriters = 4;
constexpr int kPropReaders = 3;
constexpr int kGroupsPerWriter = 120;

std::string PropKey(int writer) { return "wb:w" + std::to_string(writer); }

std::string GroupValue(int writer, uint64_t group) {
  return PropKey(writer) + "#g" + std::to_string(group) + "#" +
         std::string(96, 'p');
}

TEST(WriteBatchTest, ConcurrentReadersNeverSeeTornChains) {
  Harness h;
  std::atomic<uint64_t> acked_groups[kPropWriters];
  for (auto& a : acked_groups) a.store(0);
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> threads;
  threads.reserve(kPropWriters + kPropReaders);
  for (int w = 0; w < kPropWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string key = PropKey(w);
      for (uint64_t g = 0; g < kGroupsPerWriter; ++g) {
        WriteBatch batch;
        const uint64_t base = 3 * g + 1;
        batch.Put(key, base, GroupValue(w, g));
        batch.Put(key, base + 1, Slice(), /*dedup=*/true);
        batch.Put(key, base + 2, Slice(), /*dedup=*/true);
        ASSERT_TRUE(h.db->Write(batch).ok());
        acked_groups[w].store(g + 1, std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < kPropReaders; ++r) {
    threads.emplace_back([&, r] {
      Random rng(1000 + r);
      while (!done.load(std::memory_order_acquire)) {
        const int w = static_cast<int>(rng.Uniform(kPropWriters));
        const uint64_t frontier =
            acked_groups[w].load(std::memory_order_acquire);
        // Probe an acked group (must hit, exact bytes) or one group past
        // the frontier (may be NotFound or already visible, never torn).
        const bool probe_ahead = frontier == 0 || rng.Uniform(4) == 0;
        const uint64_t group =
            probe_ahead ? frontier : rng.Uniform(frontier);
        const uint64_t version = 3 * group + 1 + rng.Uniform(3);
        Result<std::string> got = h.db->Get(PropKey(w), version);
        if (got.ok()) {
          if (*got != GroupValue(w, group)) violations.fetch_add(1);
        } else if (probe_ahead) {
          if (!got.status().IsNotFound()) violations.fetch_add(1);
        } else {
          violations.fetch_add(1);  // Acked groups must always resolve.
        }
      }
    });
  }
  for (int w = 0; w < kPropWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kPropWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(violations.load(), 0);
  Result<QinDb::ScrubReport> scrub = h.db->Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->clean());
}

}  // namespace
}  // namespace directload::qindb
