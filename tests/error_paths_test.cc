// Error-path coverage: every public fallible operation must fail with the
// documented Status on bad input — never crash, never silently succeed.

#include <gtest/gtest.h>

#include <memory>

#include "aof/aof_manager.h"
#include "bifrost/slicer.h"
#include "common/failpoint.h"
#include "common/sim_clock.h"
#include "lsm/db.h"
#include "mint/cluster.h"
#include "qindb/qindb.h"
#include "ssd/env.h"
#include "ssd/ftl.h"

namespace directload {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.pages_per_block = 8;
  g.num_blocks = 1024;
  return g;
}

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

TEST(EnvErrorTest, MissingFileOperations) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  EXPECT_TRUE(env->GetFileSize("nope").status().IsNotFound());
  EXPECT_TRUE(env->RenameFile("nope", "other").IsNotFound());
  EXPECT_TRUE(env->DeleteFile("nope").IsNotFound());
  EXPECT_FALSE(env->FileExists("nope"));
}

TEST(EnvErrorTest, ReadBeyondPersistedRejected) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  auto file = env->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(100, 'x')).ok());  // Unflushed.
  auto reader = env->NewRandomAccessFile("f");
  ASSERT_TRUE(reader.ok());
  std::string out;
  EXPECT_TRUE((*reader)->Read(50, 10, &out).IsInvalidArgument());
  // After close, readable.
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE((*reader)->Read(50, 10, &out).ok());
}

TEST(EnvErrorTest, AppendToClosedFileRejected) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  auto file = env->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE((*file)->Append("x").IsInvalidArgument());
  EXPECT_TRUE((*file)->Close().ok());  // Idempotent.
}

// ---------------------------------------------------------------------------
// FTL
// ---------------------------------------------------------------------------

TEST(FtlErrorTest, OutOfRangeAddresses) {
  SimClock clock;
  ssd::FtlDevice ftl(SmallGeometry(), ssd::LatencyModel(), &clock);
  const std::string page(4096, 'x');
  EXPECT_TRUE(ftl.Write(ftl.logical_pages(), page).IsInvalidArgument());
  std::string out;
  EXPECT_TRUE(ftl.Read(UINT64_MAX, &out).IsInvalidArgument());
  EXPECT_TRUE(ftl.Trim(ftl.logical_pages() + 7).IsInvalidArgument());
  EXPECT_TRUE(ftl.Trim(0).ok());  // Unmapped trim is a no-op.
}

// ---------------------------------------------------------------------------
// AOF manager
// ---------------------------------------------------------------------------

class AofErrorTest : public ::testing::Test {
 protected:
  AofErrorTest()
      : env_(NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock_)) {
    aof::AofOptions options;
    options.segment_bytes = 64 << 10;
    mgr_ = std::move(aof::AofManager::Open(env_.get(), options)).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
  std::unique_ptr<aof::AofManager> mgr_;
};

TEST_F(AofErrorTest, OversizedKeyRejected) {
  const std::string huge_key(70000, 'k');
  EXPECT_TRUE(mgr_->AppendRecord(huge_key, 1, aof::kFlagNone, "v")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AofErrorTest, UnknownSegmentOperations) {
  aof::RecordView view;
  EXPECT_TRUE(mgr_->ReadRecord(aof::RecordAddress{99, 0}, 0, &view)
                  .IsNotFound());
  EXPECT_DOUBLE_EQ(mgr_->Occupancy(99), 1.0);  // Unknown = conservative.
  EXPECT_TRUE(mgr_->CollectSegment(
                      99,
                      [](const aof::RecordAddress&, const aof::RecordView&) {
                        return true;
                      },
                      [](const aof::RecordAddress&, const aof::RecordAddress&,
                         const aof::RecordView&) {},
                      [](const aof::RecordAddress&, const aof::RecordView&) {})
                  .IsNotFound());
  mgr_->MarkDead(aof::RecordAddress{99, 0}, 100);  // Silently ignored.
}

TEST_F(AofErrorTest, ReadPastSegmentEndRejected) {
  Result<aof::RecordAddress> addr =
      mgr_->AppendRecord("k", 1, aof::kFlagNone, "v");
  ASSERT_TRUE(addr.ok());
  aof::RecordView view;
  EXPECT_FALSE(mgr_->ReadRecord(aof::RecordAddress{0, 1 << 20}, 0, &view).ok());
}

TEST_F(AofErrorTest, TinySegmentConfigRejected) {
  aof::AofOptions options;
  options.segment_bytes = 4;  // Smaller than a record header.
  EXPECT_TRUE(aof::AofManager::Open(env_.get(), options)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// QinDB
// ---------------------------------------------------------------------------

class QinDbErrorTest : public ::testing::Test {
 protected:
  QinDbErrorTest()
      : env_(NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock_)) {
    db_ = std::move(qindb::QinDb::Open(env_.get(),
                                        qindb::QinDbOptions{.num_shards = 1}))
              .value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
  std::unique_ptr<qindb::QinDb> db_;
};

TEST_F(QinDbErrorTest, EmptyStoreBehaviors) {
  EXPECT_TRUE(db_->Get("k", 1).status().IsNotFound());
  EXPECT_TRUE(db_->GetLatest("k").status().IsNotFound());
  EXPECT_TRUE(db_->Del("k", 1).IsNotFound());
  Result<uint64_t> dropped = db_->DropVersion(1);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0u);
  EXPECT_TRUE(db_->MaybeGc().ok());
  EXPECT_TRUE(db_->ForceGc().ok());
  Result<qindb::QinDb::ScrubReport> scrub = db_->Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->clean());
  EXPECT_EQ(scrub->entries_checked, 0u);
  auto scan = db_->NewScanner();
  scan.SeekToFirst();
  EXPECT_FALSE(scan.Valid());
  EXPECT_TRUE(scan.value().status().IsInvalidArgument());
  EXPECT_TRUE(db_->Checkpoint().ok());  // Empty checkpoint is fine...
  auto reopened = qindb::QinDb::Open(env_.get(), {});
  EXPECT_TRUE(reopened.ok());  // ...and recoverable.
}

TEST_F(QinDbErrorTest, ReadGuardsNest) {
  {
    qindb::QinDb::ReadGuard outer(db_.get());
    {
      qindb::QinDb::ReadGuard inner(db_.get());
    }
    // Still guarded: deferral logic counts outstanding guards.
    ASSERT_TRUE(db_->Put("k", 1, "v").ok());
  }
  ASSERT_TRUE(db_->MaybeGc().ok());
}

TEST_F(QinDbErrorTest, SpacePressureOverridesReadDeferral) {
  // With gc_space_pressure = 0, GC runs even while reads are in flight.
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 16 << 10;
  options.gc_space_pressure = 0.0;
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        db->Put("k" + std::to_string(i), 1, std::string(2000, 'v')).ok());
  }
  qindb::QinDb::ReadGuard guard(db.get());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db->Del("k" + std::to_string(i), 1).ok());
  }
  EXPECT_GT(db->gc_stats().segments_reclaimed, 0u);
  EXPECT_EQ(db->stats().gc_deferrals, 0u);
}

TEST_F(QinDbErrorTest, DegradedReadOnlyModeAfterInjectedWriteFailure) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoint sites not compiled in (DIRECTLOAD_FAILPOINTS)";
  }
  failpoint::Registry& reg = failpoint::Registry::Instance();
  ASSERT_TRUE(db_->Put("k1", 1, "v1").ok());
  ASSERT_FALSE(db_->degraded());

  // One injected device-level append failure fail-stops the engine.
  ASSERT_TRUE(reg.Activate("ssd_file_append", "1*return(io)").ok());
  Status s = db_->Put("k2", 1, "v2");
  reg.DeactivateAll();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(db_->degraded());

  // Every mutation keeps failing even though the injection is gone — the
  // engine refuses to ack onto a log in an unknown state.
  EXPECT_TRUE(db_->Put("k3", 1, "v3").IsIOError());
  EXPECT_TRUE(db_->Del("k1", 1).IsIOError());
  EXPECT_TRUE(db_->DropVersion(1).status().IsIOError());
  EXPECT_TRUE(db_->Checkpoint().IsIOError());
  EXPECT_TRUE(db_->ForceGc().IsIOError());
  EXPECT_TRUE(db_->MaybeGc().IsIOError());

  // Reads still serve everything written before the fault.
  Result<std::string> got = db_->Get("k1", 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "v1");

  // Reopening runs recovery and clears the condition.
  db_.reset();
  db_ = std::move(qindb::QinDb::Open(env_.get(),
                                        qindb::QinDbOptions{.num_shards = 1}))
              .value();
  EXPECT_FALSE(db_->degraded());
  EXPECT_TRUE(db_->Put("k2", 1, "v2").ok());
  got = db_->Get("k1", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v1");
}

TEST_F(QinDbErrorTest, NoSpaceDoesNotDegrade) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoint sites not compiled in (DIRECTLOAD_FAILPOINTS)";
  }
  failpoint::Registry& reg = failpoint::Registry::Instance();
  // kNoSpace is an environmental rejection, not a torn write: the engine
  // must stay read-write so callers can free space and continue.
  ASSERT_TRUE(reg.Activate("ssd_file_append", "1*return(nospace)").ok());
  Status s = db_->Put("k1", 1, "v1");
  reg.DeactivateAll();
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
  EXPECT_FALSE(db_->degraded());
  EXPECT_TRUE(db_->Put("k1", 1, "v1").ok());
}

// ---------------------------------------------------------------------------
// Mint
// ---------------------------------------------------------------------------

TEST(MintErrorTest, GuardsAndUnavailability) {
  mint::MintOptions options;
  options.num_groups = 1;
  options.nodes_per_group = 3;
  options.node_geometry = SmallGeometry();
  mint::MintCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  EXPECT_TRUE(cluster.FailNode(-1).IsInvalidArgument());
  EXPECT_TRUE(cluster.RecoverNode(99).status().IsInvalidArgument());
  EXPECT_TRUE(cluster.AddNode(5).status().IsInvalidArgument());
  // Recovering an up node is a misuse, not a silent reopen.
  EXPECT_TRUE(cluster.RecoverNode(0).status().IsInvalidArgument());

  EXPECT_TRUE(cluster.Get("missing", 1).status().IsNotFound());
  EXPECT_TRUE(cluster.Del("missing", 1).IsNotFound());

  // All nodes down: every operation degrades to Unavailable, and the error
  // names the group so operators can tell "pair is gone" from "nobody
  // could answer". Del in particular must NOT report NotFound here.
  for (int n = 0; n < 3; ++n) ASSERT_TRUE(cluster.FailNode(n).ok());
  Status put = cluster.Put("k", 1, "v");
  EXPECT_TRUE(put.IsUnavailable());
  EXPECT_NE(put.ToString().find("group"), std::string::npos) << put.ToString();
  Status get = cluster.Get("k", 1).status();
  EXPECT_TRUE(get.IsUnavailable());
  EXPECT_NE(get.ToString().find("group"), std::string::npos) << get.ToString();
  Status del = cluster.Del("k", 1);
  EXPECT_TRUE(del.IsUnavailable()) << del.ToString();
  EXPECT_NE(del.ToString().find("group"), std::string::npos) << del.ToString();
}

// ---------------------------------------------------------------------------
// LSM
// ---------------------------------------------------------------------------

TEST(LsmErrorTest, EmptyKeysAndEmptyStore) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  auto db = std::move(lsm::LsmDb::Open(env.get(), {})).value();
  EXPECT_TRUE(db->Put("", "v").IsInvalidArgument());
  EXPECT_TRUE(db->Delete("").IsInvalidArgument());
  EXPECT_TRUE(db->Get("anything").status().IsNotFound());
  EXPECT_TRUE(db->ForceFlush().ok());  // Empty flush is a no-op.
  EXPECT_TRUE(db->CompactUntilQuiescent().ok());
  auto it = db->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

// ---------------------------------------------------------------------------
// Bifrost slices
// ---------------------------------------------------------------------------

TEST(SliceErrorTest, DefaultSliceFailsVerification) {
  bifrost::SlicePacket empty;
  EXPECT_FALSE(bifrost::VerifySlice(empty));
  std::vector<bifrost::ShippedPair> pairs;
  EXPECT_TRUE(bifrost::UnpackSlice(empty, &pairs).IsCorruption());
}

}  // namespace
}  // namespace directload
