// Tests of the workload trace format and replay (the stand-in for the
// paper's production trace replays), plus the integrity scrubber and device
// wear tracking.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "common/sim_clock.h"
#include "index/trace.h"
#include "qindb/qindb.h"
#include "ssd/device.h"
#include "ssd/env.h"
#include "ssd/native.h"

namespace directload::webindex {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.pages_per_block = 8;
  g.num_blocks = 4096;
  return g;
}

TraceRecord Put(const std::string& key, uint64_t version,
                const std::string& value) {
  return TraceRecord{TraceOp::kPut, key, version, value};
}

TEST(TraceFormatTest, RoundTripAllOps) {
  std::string buffer;
  AppendTraceRecord(&buffer, Put("k1", 1, "value-1"));
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kDedupPut, "k1", 2, ""});
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kGet, "k1", 2, ""});
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kDel, "k1", 1, ""});
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kDropVersion, "", 1, ""});

  Result<std::vector<TraceRecord>> records = ParseTrace(buffer);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[0].op, TraceOp::kPut);
  EXPECT_EQ((*records)[0].value, "value-1");
  EXPECT_EQ((*records)[1].op, TraceOp::kDedupPut);
  EXPECT_EQ((*records)[4].version, 1u);
}

TEST(TraceFormatTest, CorruptionDetected) {
  std::string buffer;
  AppendTraceRecord(&buffer, Put("key", 3, "some value bytes"));
  for (size_t i = 0; i < buffer.size(); i += 2) {
    std::string damaged = buffer;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x10);
    EXPECT_FALSE(ParseTrace(damaged).ok()) << "byte " << i;
  }
  // Truncations too.
  for (size_t cut = 1; cut < buffer.size(); cut += 3) {
    EXPECT_FALSE(ParseTrace(Slice(buffer.data(), cut)).ok()) << cut;
  }
}

TEST(TraceFormatTest, FilePersistenceRoundTrip) {
  std::string buffer;
  Random rnd(3);
  for (int i = 0; i < 50; ++i) {
    AppendTraceRecord(&buffer,
                      Put("key" + std::to_string(i), 1, rnd.NextString(100)));
  }
  const std::string path = "/tmp/directload_trace_test.bin";
  ASSERT_TRUE(SaveTraceFile(path, buffer).ok());
  Result<std::string> loaded = LoadTraceFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, buffer);
  std::remove(path.c_str());
  EXPECT_TRUE(LoadTraceFile("/tmp/definitely-missing-xyz").status().IsNotFound());
}

TEST(TraceReplayTest, ReplayReconstructsState) {
  std::string buffer;
  Random rnd(4);
  const std::string v1 = rnd.NextString(1000);
  AppendTraceRecord(&buffer, Put("url:a", 1, v1));
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kDedupPut, "url:a", 2, ""});
  AppendTraceRecord(&buffer, Put("url:b", 1, "bee"));
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kDel, "url:b", 1, ""});
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kGet, "url:a", 2, ""});
  AppendTraceRecord(&buffer, TraceRecord{TraceOp::kGet, "url:zzz", 1, ""});

  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  auto db = std::move(qindb::QinDb::Open(
                          env.get(), qindb::QinDbOptions{.num_shards = 1}))
                .value();
  Result<TraceReplayStats> stats = ReplayTrace(buffer, db.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->puts, 2u);
  EXPECT_EQ(stats->dedup_puts, 1u);
  EXPECT_EQ(stats->dels, 1u);
  EXPECT_EQ(stats->gets, 2u);
  EXPECT_EQ(stats->get_misses, 1u);

  EXPECT_EQ(*db->Get("url:a", 2), v1);
  EXPECT_TRUE(db->Get("url:b", 1).status().IsNotFound());
}

TEST(TraceReplayTest, ReplayIsDeterministic) {
  // Two engines replaying the same trace end in identical logical state.
  std::string buffer;
  Random rnd(5);
  for (int i = 0; i < 400; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(40));
    const uint64_t version = 1 + rnd.Uniform(4);
    const uint64_t dice = rnd.Uniform(10);
    if (dice < 6) {
      AppendTraceRecord(&buffer, Put(key, version, rnd.NextString(300)));
    } else if (dice < 8) {
      AppendTraceRecord(&buffer, TraceRecord{TraceOp::kDel, key, version, ""});
    } else {
      AppendTraceRecord(&buffer, TraceRecord{TraceOp::kGet, key, version, ""});
    }
  }
  SimClock clocks[2];
  std::unique_ptr<ssd::SsdEnv> envs[2];
  std::unique_ptr<qindb::QinDb> dbs[2];  // Declared last: closed before the envs die.
  for (int i = 0; i < 2; ++i) {
    envs[i] = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                        ssd::LatencyModel(), &clocks[i]);
    dbs[i] = std::move(qindb::QinDb::Open(
                           envs[i].get(),
                           qindb::QinDbOptions{.num_shards = 1}))
                 .value();
    ASSERT_TRUE(ReplayTrace(buffer, dbs[i].get()).ok());
  }
  for (int k = 0; k < 40; ++k) {
    for (uint64_t v = 1; v <= 4; ++v) {
      const std::string key = "key" + std::to_string(k);
      Result<std::string> a = dbs[0]->Get(key, v);
      Result<std::string> b = dbs[1]->Get(key, v);
      EXPECT_EQ(a.ok(), b.ok()) << key << "@" << v;
      if (a.ok()) {
        EXPECT_EQ(*a, *b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scrub
// ---------------------------------------------------------------------------

TEST(ScrubTest, CleanStoreScrubsClean) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 256 << 10;
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  Random rnd(6);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db->Put("k" + std::to_string(i), 1, rnd.NextString(1000)).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(db->Put("k" + std::to_string(i), 2, Slice(), true).ok());
    }
  }
  Result<qindb::QinDb::ScrubReport> report = db->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->entries_checked, 80u);
  EXPECT_GT(report->bytes_verified, 60u * 1000u);
}

TEST(ScrubTest, ScrubFindsInjectedCorruption) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 256 << 10;
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  Random rnd(7);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db->Put("k" + std::to_string(i), 1, rnd.NextString(2000)).ok());
  }
  ASSERT_TRUE(db->aof().SealActive().ok());
  ASSERT_TRUE(env->CorruptFileByteForTesting("aof_00000000.dat", 3000).ok());
  Result<qindb::QinDb::ScrubReport> report = db->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_EQ(report->damaged_entries, 1u);
  EXPECT_EQ(report->entries_checked, 40u);
}

// ---------------------------------------------------------------------------
// Wear tracking
// ---------------------------------------------------------------------------

TEST(WearTest, EraseCountsAccumulate) {
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 16;
  ssd::SsdDevice dev(geometry, ssd::LatencyModel(), &clock);
  EXPECT_EQ(dev.MaxEraseCount(), 0u);
  const std::string page(geometry.page_size, 'x');
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(dev.ProgramPage(0, page).ok());
    ASSERT_TRUE(dev.InvalidatePage(0).ok());
    ASSERT_TRUE(dev.EraseBlock(0).ok());
  }
  EXPECT_EQ(dev.BlockEraseCount(0), 3u);
  EXPECT_EQ(dev.MaxEraseCount(), 3u);
  EXPECT_NEAR(dev.MeanEraseCount(), 3.0 / 16.0, 1e-9);
}

TEST(WearTest, NativeFifoAllocationSpreadsWear) {
  // QinDB's AOF pattern recycles blocks through a FIFO free list, so wear
  // spreads evenly — the simulator's stand-in for wear leveling.
  SimClock clock;
  ssd::Geometry geometry;
  geometry.pages_per_block = 8;
  geometry.num_blocks = 32;
  ssd::NativeSsd native(geometry, ssd::LatencyModel(), &clock);
  const std::string page(geometry.page_size, 'x');
  for (int cycle = 0; cycle < 200; ++cycle) {
    Result<uint32_t> block = native.AllocateBlock();
    ASSERT_TRUE(block.ok());
    for (uint32_t p = 0; p < geometry.pages_per_block; ++p) {
      ASSERT_TRUE(native.AppendPage(*block, page).ok());
    }
    ASSERT_TRUE(native.ReleaseBlock(*block).ok());
  }
  const double mean = native.device().MeanEraseCount();
  EXPECT_NEAR(mean, 200.0 / 32.0, 1.0);
  // No block is worn disproportionately.
  EXPECT_LE(native.device().MaxEraseCount(), mean * 2);
}

}  // namespace
}  // namespace directload::webindex
