#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "net/fluid_network.h"

namespace directload::net {
namespace {

TEST(FluidNetworkTest, SingleFlowUsesFullCapacity) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);  // 1000 B/s.
  net.StartFlow({link}, 5000.0, 0);

  int completions = 0;
  uint64_t finish = 0;
  net.AdvanceUntilIdle(100.0, 0.5, [&](const Flow& f) {
    ++completions;
    finish = f.finish_micros;
  });
  EXPECT_EQ(completions, 1);
  EXPECT_NEAR(static_cast<double>(finish) * 1e-6, 5.0, 0.01);
}

TEST(FluidNetworkTest, TwoFlowsShareEqually) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  net.StartFlow({link}, 1000.0, 0);
  net.StartFlow({link}, 1000.0, 0);
  std::vector<double> finishes;
  net.AdvanceUntilIdle(100.0, 0.25, [&](const Flow& f) {
    finishes.push_back(static_cast<double>(f.finish_micros) * 1e-6);
  });
  ASSERT_EQ(finishes.size(), 2u);
  // Each gets 500 B/s: both finish around t=2s.
  EXPECT_NEAR(finishes[0], 2.0, 0.3);
  EXPECT_NEAR(finishes[1], 2.0, 0.3);
}

TEST(FluidNetworkTest, ClassWeightsSplitBandwidth) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  const int summary = net.AddTrafficClass("summary", 0.4);
  const int inverted = net.AddTrafficClass("inverted", 0.6);
  const uint64_t f_sum = net.StartFlow({link}, 1e9, summary);
  const uint64_t f_inv = net.StartFlow({link}, 1e9, inverted);
  net.Advance(1.0, nullptr);
  EXPECT_NEAR(net.FlowRate(f_sum), 400.0, 1.0);
  EXPECT_NEAR(net.FlowRate(f_inv), 600.0, 1.0);
}

TEST(FluidNetworkTest, IdleClassShareIsRedistributed) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  net.AddTrafficClass("summary", 0.4);
  const int inverted = net.AddTrafficClass("inverted", 0.6);
  const uint64_t f = net.StartFlow({link}, 1e9, inverted);
  net.Advance(1.0, nullptr);
  // No summary traffic: the inverted flow takes the whole link.
  EXPECT_NEAR(net.FlowRate(f), 1000.0, 1.0);
}

TEST(FluidNetworkTest, BottleneckOnMultiHopPath) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int c = net.AddNode("c");
  const int fast = net.AddLink(a, b, 10000.0);
  const int slow = net.AddLink(b, c, 100.0);
  const uint64_t f = net.StartFlow({fast, slow}, 1e9, 0);
  net.Advance(1.0, nullptr);
  EXPECT_NEAR(net.FlowRate(f), 100.0, 1.0);
}

TEST(FluidNetworkTest, BackgroundTrafficReducesCapacity) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  net.SetBackground(link, 0.75);
  const uint64_t f = net.StartFlow({link}, 1e9, 0);
  net.Advance(1.0, nullptr);
  EXPECT_NEAR(net.FlowRate(f), 250.0, 1.0);
}

TEST(FluidNetworkTest, ClockAdvancesWithSimulation) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  net.AddLink(a, b, 1000.0);
  net.Advance(0.5, nullptr);
  net.Advance(0.5, nullptr);
  EXPECT_EQ(clock.NowMicros(), 1000000u);
}

TEST(FluidNetworkTest, ZeroByteFlowCompletesImmediately) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  net.StartFlow({link}, 0.0, 0);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FluidNetworkTest, AdvanceUntilIdleGivesUpAtDeadline) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 10.0);  // 10 B/s.
  net.StartFlow({link}, 1e9, 0);             // Will take ~3 years.
  const size_t leftover = net.AdvanceUntilIdle(5.0, 1.0, nullptr);
  EXPECT_EQ(leftover, 1u);
  EXPECT_NEAR(clock.NowSeconds(), 5.0, 0.01);
}

TEST(FluidNetworkTest, LinkCarriedBytesAccumulate) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int c = net.AddNode("c");
  const int l1 = net.AddLink(a, b, 1000.0);
  const int l2 = net.AddLink(b, c, 1000.0);
  net.StartFlow({l1, l2}, 500.0, 0);
  net.AdvanceUntilIdle(10.0, 0.5, nullptr);
  // The flow crossed both links: each carried its full byte count.
  EXPECT_NEAR(net.LinkBytesCarried(l1), 500.0, 1.0);
  EXPECT_NEAR(net.LinkBytesCarried(l2), 500.0, 1.0);
}

TEST(FluidNetworkTest, CompletionOrderFollowsFlowSizes) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  const uint64_t small = net.StartFlow({link}, 100.0, 0);
  const uint64_t large = net.StartFlow({link}, 10000.0, 0);
  std::vector<uint64_t> order;
  net.AdvanceUntilIdle(60.0, 0.1, [&](const Flow& f) {
    order.push_back(f.id);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], small);
  EXPECT_EQ(order[1], large);
}

TEST(BandwidthMonitorTest, TracksSpareCapacity) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  BandwidthMonitor monitor(&net);
  net.Advance(1.0, nullptr);
  monitor.Sample();
  EXPECT_NEAR(monitor.PredictSpare(link), 1000.0, 1.0);

  // Saturate the link; the EWMA converges toward zero spare.
  net.StartFlow({link}, 1e9, 0);
  for (int i = 0; i < 30; ++i) {
    net.Advance(1.0, nullptr);
    monitor.Sample();
  }
  EXPECT_LT(monitor.PredictSpare(link), 50.0);
}

TEST(BandwidthMonitorTest, EwmaSmoothsSpikes) {
  SimClock clock;
  FluidNetwork net(&clock);
  const int a = net.AddNode("a");
  const int b = net.AddNode("b");
  const int link = net.AddLink(a, b, 1000.0);
  BandwidthMonitor monitor(&net, /*alpha=*/0.2);
  net.Advance(1.0, nullptr);
  monitor.Sample();  // Seed at 1000 spare.
  // One spike of full utilization must not collapse the estimate.
  net.StartFlow({link}, 900.0, 0);
  net.Advance(1.0, nullptr);
  monitor.Sample();
  EXPECT_GT(monitor.PredictSpare(link), 500.0);
}

}  // namespace
}  // namespace directload::net
