// The chaos harness (ISSUE: failpoints everywhere). Two suites:
//
//  1. ChaosCrashPoints — for every registered failpoint inside AOF sealing
//     and GC rewriting, inject a one-shot failure at that exact point, then
//     hard-crash the engine (volatile tails lost) and verify recovery: every
//     pair that was durable before the fault keeps its exact value, every
//     deleted pair stays deleted, and an integrity scrub comes back clean.
//
//  2. ChaosSchedules — seeded, randomized fault storms against a live
//     KvServer over real sockets: node crashes and recoveries, server
//     restarts, and a dozen armed failpoints across every layer, while
//     closed-loop writers and readers hammer the cluster. Invariants:
//     (a) every acknowledged write is durable and readable once the storm
//     passes and the nodes are recovered, and (b) a read NEVER returns a
//     torn or cross-version value — errors are always surfaced as errors.
//
// Both suites skip unless failpoints are compiled in (-DDIRECTLOAD_FAILPOINTS=ON).
//
// Deliberate exclusions, so the invariants stay provable:
//  - No `corrupt` action on write paths: silently flipping a bit in data the
//    engine has already acknowledged loses the write with no error anywhere,
//    which no retry discipline can mask. Read-side corruption IS injected —
//    record checksums must convert it into an error, never into wrong bytes.
//  - Writers issue no deletes: an acknowledged Del only proves SOME replica
//    holds the tombstone. Without anti-entropy, another replica may still
//    serve the pair, so "deleted implies NotFound everywhere" is not an
//    invariant of this system and asserting it would be a false alarm.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bifrost/dedup.h"
#include "bifrost/wire/bulk_loader.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "mint/cluster.h"
#include "qindb/qindb.h"
#include "qindb/write_batch.h"
#include "rpc/client.h"
#include "server/kv_server.h"
#include "ssd/env.h"

namespace directload {
namespace {

using failpoint::Registry;

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.pages_per_block = 8;
  g.num_blocks = 4096;
  return g;
}

/// Deterministic value for a key: any torn, truncated, or cross-key read
/// breaks the equality check against a recomputed copy.
std::string ValueFor(const std::string& key) {
  Random rng(Hash64(Slice(key)) | 1);
  const size_t extra = static_cast<size_t>(rng.Uniform(96));
  return key + "|" + rng.NextString(64 + extra);
}

// ---------------------------------------------------------------------------
// Suite 1: crash-point recovery sweep over AOF seal + GC rewrite.
// ---------------------------------------------------------------------------

/// Builds an engine with sealed, GC-eligible segments, injects a one-shot
/// IO failure at `point`, drives seals and collections into it, then
/// crashes and verifies recovery. At num_shards > 1 the one-shot fault hits
/// whichever shard reaches the point first — only that shard's AOF takes the
/// hit — and the durable model must still survive in full: the other shards
/// were never faulted, and the hit shard fail-stopped before losing
/// anything it had acknowledged durable.
void RunCrashPoint(const std::string& point, uint32_t num_shards) {
  SCOPED_TRACE("crash point: " + point +
               " shards=" + std::to_string(num_shards));
  Registry& reg = Registry::Instance();
  reg.DeactivateAll();
  reg.ResetCountersForTesting();

  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = num_shards;
  options.aof.segment_bytes = 4 << 10;  // Tiny segments: many seals/victims.
  options.aof.log_deletes = true;
  options.auto_gc = false;  // GC runs only when the test says so.
  auto opened = qindb::QinDb::Open(env.get(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<qindb::QinDb> db = std::move(opened).value();

  // Workload: 48 pairs, then delete 7 of every 8. The surviving ~12% live
  // occupancy puts every data segment under the GC threshold, and the kept
  // pairs force real record rewrites during collection.
  std::map<std::string, std::string> kept;     // key -> expected value
  std::vector<std::string> deleted;
  for (int i = 0; i < 48; ++i) {
    const std::string key = "ck" + std::to_string(i);
    const std::string value = ValueFor(key);
    ASSERT_TRUE(db->Put(key, 1, value).ok());
    kept[key] = value;
  }
  for (int i = 0; i < 48; ++i) {
    if (i % 8 == 0) continue;
    const std::string key = "ck" + std::to_string(i);
    ASSERT_TRUE(db->Del(key, 1).ok());
    kept.erase(key);
    deleted.push_back(key);
  }
  // Durability point: seal everything and checkpoint. The model below is
  // the state the crash must recover to — everything after this line is
  // allowed (expected, even) to be lost or half-applied.
  ASSERT_TRUE(db->Checkpoint().ok()) << "while preparing " << point;

  failpoint::FailPoint* fp = reg.Find(point);
  ASSERT_NE(fp, nullptr);
  ASSERT_TRUE(reg.Activate(point, "1*return(io)").ok());

  // Drive appends, seals, and collections into the armed point. Statuses
  // are ignored on purpose: the first failure flips the engine into
  // degraded read-only mode and later calls report that — both are fine,
  // the sweep only cares that the point actually fired and that recovery
  // is clean afterwards.
  for (int i = 0; i < 12; ++i) {
    DL_DISCARD_STATUS("driving writes into the armed point",
                      db->Put("drive" + std::to_string(i), 1,
                              std::string(180, 'd')));
  }
  DL_DISCARD_STATUS("driving into the armed point", db->Checkpoint());
  DL_DISCARD_STATUS("driving into the armed point", db->ForceGc());
  DL_DISCARD_STATUS("driving into the armed point", db->Checkpoint());
  EXPECT_GT(fp->hits(), 0u) << "the drive never reached " << point;
  reg.DeactivateAll();

  // Hard crash: leak the engine so no destructor seals or pads anything;
  // the env forgets every open writer's volatile tail.
  (void)db.release();
  ssd::SsdEnv* raw_env = env.get();
  raw_env->SimulateCrashForTesting();

  auto reopened = qindb::QinDb::Open(raw_env, options);
  ASSERT_TRUE(reopened.ok())
      << "recovery failed after fault at " << point << ": "
      << reopened.status().ToString();
  std::unique_ptr<qindb::QinDb> recovered = std::move(reopened).value();
  EXPECT_FALSE(recovered->degraded());

  for (const auto& [key, value] : kept) {
    Result<std::string> got = recovered->Get(key, 1);
    ASSERT_TRUE(got.ok()) << key << " lost after fault at " << point << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, value) << key << " torn after fault at " << point;
  }
  for (const std::string& key : deleted) {
    EXPECT_TRUE(recovered->Get(key, 1).status().IsNotFound())
        << key << " resurrected after fault at " << point;
  }
  Result<qindb::QinDb::ScrubReport> scrub = recovered->Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->clean())
      << "scrub after fault at " << point << ": damaged="
      << scrub->damaged_entries
      << " unresolvable=" << scrub->unresolvable_dedups;
  // And the recovered engine is writable again — degraded mode must not
  // survive a reopen.
  EXPECT_TRUE(recovered->Put("post-recovery", 1, "alive").ok());
}

TEST(ChaosCrashPoints, RecoversFromEverySealAndGcFailpoint) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DDIRECTLOAD_FAILPOINTS=ON";
  }
  // Enumerate the registered points instead of hard-coding them: a new
  // failpoint added inside sealing or collection is swept automatically.
  std::vector<std::string> points;
  for (failpoint::FailPoint* fp : Registry::Instance().List()) {
    const std::string& name = fp->name();
    if (name.rfind("aof_seal_", 0) == 0 || name.rfind("aof_gc_", 0) == 0) {
      points.push_back(name);
    }
  }
  ASSERT_GE(points.size(), 7u) << "seal/GC failpoints went missing";
  for (const uint32_t shards : {1u, 4u}) {
    for (const std::string& point : points) {
      RunCrashPoint(point, shards);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Suite 1b: group-commit crash points — a fault lands mid-batch.
// ---------------------------------------------------------------------------

/// Commits multi-op WriteBatches into an armed append-path failpoint, then
/// hard-crashes and verifies the group-commit durability contract:
///  - batches checkpointed before the fault keep every op, byte-exact;
///  - batches acked after the checkpoint sit in the volatile AOF tail, so
///    each may lose a SUFFIX of its ops on crash — but survivors must form
///    a clean prefix in op order (a gap would mean AppendMany reordered or
///    tore the group);
///  - the batch whose Write failed follows the point's semantics: an
///    aof_append fault fires before anything is written, so the failed
///    sub-batch vanishes entirely; an aof_roll_segment fault can strand an
///    appended prefix, which is held to the same prefix rule.
///
/// At num_shards > 1 every rule is PER SHARD: a batch splits into sub-
/// batches committed through independent AOFs, the one-shot fault hits one
/// shard's sub-batch (its ops fail; sibling sub-batches commit), and the
/// crash clips each shard's volatile tail separately — so survivors must
/// form a gap-free prefix of the batch's op subsequence on EACH shard.
void RunBatchCrashPoint(const std::string& point, uint32_t num_shards) {
  SCOPED_TRACE("batch crash point: " + point +
               " shards=" + std::to_string(num_shards));
  Registry& reg = Registry::Instance();
  reg.DeactivateAll();
  reg.ResetCountersForTesting();

  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = num_shards;
  options.aof.segment_bytes = 4 << 10;  // Tiny segments: batches span rolls.
  options.auto_gc = false;
  auto opened = qindb::QinDb::Open(env.get(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<qindb::QinDb> db = std::move(opened).value();

  constexpr int kOpsPerBatch = 6;
  auto batch_key = [](int b, int j) {
    return "gb" + std::to_string(b) + ":o" + std::to_string(j);
  };
  // Per-op statuses of the batch whose Write failed: the non-OK ops are
  // exactly the hit shard's sub-batch.
  std::vector<Status> failed_statuses;
  auto commit_batch = [&](int b) {
    qindb::WriteBatch batch;
    for (int j = 0; j < kOpsPerBatch; ++j) {
      const std::string key = batch_key(b, j);
      batch.Put(key, 1, ValueFor(key));
    }
    Status status = db->Write(batch);
    if (!status.ok()) failed_statuses = batch.statuses();
    return status;
  };

  // Phase 1: the durable model — batches committed, then checkpointed.
  int next_batch = 0;
  for (; next_batch < 6; ++next_batch) {
    ASSERT_TRUE(commit_batch(next_batch).ok());
  }
  const int checkpointed_batches = next_batch;
  ASSERT_TRUE(db->Checkpoint().ok()) << "while preparing " << point;

  // Phase 2: arm the point and keep committing until a batch fails.
  failpoint::FailPoint* fp = reg.Find(point);
  ASSERT_NE(fp, nullptr);
  ASSERT_TRUE(reg.Activate(point, "1*return(io)").ok());
  int failed_batch = -1;
  std::vector<int> acked_tail;  // Acked post-checkpoint: volatile AOF tail.
  for (int i = 0; i < 64 && failed_batch < 0; ++i, ++next_batch) {
    if (commit_batch(next_batch).ok()) {
      acked_tail.push_back(next_batch);
    } else {
      failed_batch = next_batch;
    }
  }
  ASSERT_GE(failed_batch, 0) << "the drive never reached " << point;
  ASSERT_EQ(failed_statuses.size(), static_cast<size_t>(kOpsPerBatch));
  EXPECT_GT(fp->hits(), 0u);
  EXPECT_TRUE(db->degraded()) << "an append-path IO fault must degrade";
  reg.DeactivateAll();

  // Hard crash: leak the engine, drop every open writer's volatile tail.
  (void)db.release();
  ssd::SsdEnv* raw_env = env.get();
  raw_env->SimulateCrashForTesting();

  auto reopened = qindb::QinDb::Open(raw_env, options);
  ASSERT_TRUE(reopened.ok())
      << "recovery failed after batch fault at " << point << ": "
      << reopened.status().ToString();
  std::unique_ptr<qindb::QinDb> recovered = std::move(reopened).value();
  EXPECT_FALSE(recovered->degraded());

  for (int b = 0; b < checkpointed_batches; ++b) {
    for (int j = 0; j < kOpsPerBatch; ++j) {
      const std::string key = batch_key(b, j);
      Result<std::string> got = recovered->Get(key, 1);
      ASSERT_TRUE(got.ok()) << key << " lost after batch fault at " << point
                            << ": " << got.status().ToString();
      EXPECT_EQ(*got, ValueFor(key)) << key << " torn at " << point;
    }
  }

  // Survivors of a post-checkpoint batch must be a gap-free prefix of the
  // batch's op subsequence ON EACH SHARD: sub-batches sit in independent
  // AOF tails that the crash clips separately, but within one shard the
  // leader lays the group down in op order (at num_shards=1 there is one
  // shard, and this is exactly the unsharded whole-batch prefix rule).
  auto check_prefix = [&](int b) {
    std::map<uint32_t, bool> shard_missing;
    for (int j = 0; j < kOpsPerBatch; ++j) {
      const std::string key = batch_key(b, j);
      const uint32_t shard = recovered->ShardOf(key);
      Result<std::string> got = recovered->Get(key, 1);
      if (got.ok()) {
        EXPECT_FALSE(shard_missing[shard])
            << "batch " << b << " has a shard-" << shard << " gap before op "
            << j << " at " << point;
        EXPECT_EQ(*got, ValueFor(key)) << key << " torn at " << point;
      } else {
        EXPECT_TRUE(got.status().IsNotFound())
            << key << ": " << got.status().ToString();
        shard_missing[shard] = true;
      }
    }
  };
  for (int b : acked_tail) check_prefix(b);
  if (point == "aof_append") {
    // The point fires before the hit shard's first record: none of the
    // failed ops may survive. Sibling sub-batches on other shards (OK
    // statuses) committed normally and follow the per-shard prefix rule.
    for (int j = 0; j < kOpsPerBatch; ++j) {
      if (failed_statuses[j].ok()) continue;
      EXPECT_TRUE(
          recovered->Get(batch_key(failed_batch, j), 1).status().IsNotFound())
          << "op " << j << " of the failed sub-batch survived " << point;
    }
    check_prefix(failed_batch);
  } else {
    check_prefix(failed_batch);
  }

  Result<qindb::QinDb::ScrubReport> scrub = recovered->Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->clean())
      << "scrub after batch fault at " << point << ": damaged="
      << scrub->damaged_entries
      << " unresolvable=" << scrub->unresolvable_dedups;
  qindb::WriteBatch post;
  post.Put("post-recovery", 1, "alive");
  post.Put("post-recovery", 2, "still alive");
  EXPECT_TRUE(recovered->Write(post).ok());
}

TEST(ChaosCrashPoints, GroupCommitSurvivesAppendAndRollFaults) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DDIRECTLOAD_FAILPOINTS=ON";
  }
  for (const uint32_t shards : {1u, 4u}) {
    for (const char* point : {"aof_append", "aof_roll_segment"}) {
      RunBatchCrashPoint(point, shards);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Suite 2: seeded randomized fault schedules against a live KvServer.
// ---------------------------------------------------------------------------

int NumSchedules() {
  // The TSan CI job dials this down: every schedule spawns real threads
  // under a 10x+ sanitizer slowdown.
  if (const char* env = std::getenv("DIRECTLOAD_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 25;
}

uint64_t FirstSeed() {
  // Replay aid: start the schedule sweep at a specific seed (combine with
  // DIRECTLOAD_CHAOS_SEEDS=1 to hammer one schedule).
  if (const char* env = std::getenv("DIRECTLOAD_CHAOS_FIRST_SEED")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<uint64_t>(n);
  }
  return 1;
}

struct AckedWrite {
  std::string key;
  std::string value;
};

/// The base fault surface, armed for the whole schedule. Probabilities are
/// low enough that the system keeps making progress and high enough that
/// every layer's error path runs many times per schedule.
const std::pair<const char*, const char*> kBaseFaults[] = {
    {"mint_replica_read", "10%return(unavailable)"},
    {"qindb_get", "4%return(io)"},
    {"qindb_put", "4%return(busy)"},
    {"ssd_file_read", "2%return(io)"},
    {"ssd_file_read_corrupt", "4%corrupt"},
    // Rolls and syncs are rare events (a handful per schedule), so these
    // fire deterministically when reached — a 1ms stall at every seal is
    // chaos enough, and probabilistic arming would leave some schedules
    // with the points silent.
    {"ssd_file_sync", "delay(1)"},
    {"aof_roll_segment", "delay(1)"},
    {"qindb_checkpoint", "delay(1)"},
    // At most two injected append failures per schedule: each one flips a
    // node into degraded read-only mode for the rest of the storm, and the
    // schedule still wants live replicas to write to.
    {"aof_append", "1%2*return(io)"},
    {"rpc_send", "1%return(unavailable)"},
    {"rpc_recv", "1%return(unavailable)"},
    {"rpc_connect", "10%return(unavailable)"},
    {"server_accept", "25%return(io)"},
    {"server_enqueue", "3%return(busy)"},
};

void RunSchedule(uint64_t seed, uint32_t num_shards,
                 std::set<std::string>* sweep_fired) {
  SCOPED_TRACE("schedule seed " + std::to_string(seed) +
               " shards=" + std::to_string(num_shards));
  Registry& reg = Registry::Instance();
  reg.DeactivateAll();
  reg.ResetCountersForTesting();
  reg.SetSeed(1000 + seed);

  mint::MintOptions cluster_options;
  cluster_options.num_groups = 2;
  cluster_options.nodes_per_group = 2;
  cluster_options.replicas = 2;
  cluster_options.parallel_reads = true;
  cluster_options.node_geometry = SmallGeometry();
  // Sharded engines on every node: an injected append fault degrades ONE
  // shard of one node; writes routed to the node's other shards keep
  // committing, and the acked-write invariant must hold regardless.
  cluster_options.engine.num_shards = num_shards;
  // Small segments: every node rolls (and therefore seals + syncs) several
  // times per schedule, keeping the seal-path failpoints in play.
  cluster_options.engine.aof.segment_bytes = 4 << 10;
  // Periodic checkpoints: file syncs only happen when a checkpoint seals the
  // active segment, so without this the checkpoint/sync/rename points would
  // be structurally silent for the whole schedule. It also pulls the
  // checkpoint-load path into every mid-storm recovery.
  cluster_options.engine.checkpoint_interval_bytes = 8 << 10;
  // Block cache on every engine: the staleness invariants (supersede/GC/
  // drop must evict or re-key) now ride every storm, and the acked-write
  // check below would catch a stale cached value as a torn write.
  cluster_options.engine.cache_bytes = 1 << 20;
  cluster_options.seed = seed;
  mint::MintCluster cluster(cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  server::KvServerOptions server_options;
  server_options.num_workers = 4;
  auto server =
      std::make_unique<server::KvServer>(&cluster, server_options);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  // Arm the storm. Per-point RNG streams derive from the registry seed, so
  // one failing seed replays exactly.
  for (const auto& [name, spec] : kBaseFaults) {
    ASSERT_TRUE(reg.Activate(name, spec).ok()) << name << "=" << spec;
  }

  rpc::RpcClient::Options chaos_client;
  chaos_client.connect_timeout_ms = 500;
  chaos_client.request_timeout_ms = 2000;
  chaos_client.max_reconnects = 3;
  chaos_client.backoff_initial_ms = 2;
  chaos_client.backoff_max_ms = 20;
  chaos_client.retry_budget_ms = 4000;

  std::mutex acked_mu;
  std::vector<AckedWrite> acked;
  std::atomic<bool> writers_done{false};
  std::atomic<int> value_violations{0};
  std::string first_violation;

  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 100;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      rpc::RpcClient::Options options = chaos_client;
      options.backoff_seed = seed * 31 + static_cast<uint64_t>(t) + 1;
      rpc::RpcClient client("127.0.0.1", port, options);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string key = "s" + std::to_string(seed) + ":t" +
                                std::to_string(t) + ":k" + std::to_string(i);
        const std::string value = ValueFor(key);
        if (client.Put(key, 1, value).ok()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.push_back(AckedWrite{key, value});
        }
        // Failed puts may or may not have been applied (the ack can be the
        // injected casualty); the invariant only binds acknowledged ones.
      }
    });
  }
  // Closed-loop reader: during the storm, errors are expected — wrong BYTES
  // are not. Any successful read must match the recomputed value exactly.
  threads.emplace_back([&] {
    rpc::RpcClient::Options options = chaos_client;
    options.backoff_seed = seed * 31 + 77;
    rpc::RpcClient client("127.0.0.1", port, options);
    Random rng(seed * 131 + 7);
    while (!writers_done.load(std::memory_order_acquire)) {
      AckedWrite target;
      {
        std::lock_guard<std::mutex> lock(acked_mu);
        if (acked.empty()) {
          target.key.clear();
        } else {
          target = acked[rng.Uniform(acked.size())];
        }
      }
      if (target.key.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      Result<std::string> got = client.Get(target.key, 1);
      if (got.ok() && *got != target.value) {
        if (value_violations.fetch_add(1) == 0) {
          std::lock_guard<std::mutex> lock(acked_mu);
          first_violation = target.key + ": got " + got->substr(0, 48) +
                            " want " + target.value.substr(0, 48);
        }
      }
    }
  });

  // The chaos driver: node crashes/recoveries and one server restart,
  // paced across the writers' lifetime, all derived from the seed.
  Random chaos(seed ^ 0xc4a05);
  const int kSteps = 30;
  for (int step = 0; step < kSteps; ++step) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    switch (chaos.Uniform(4)) {
      case 0: {  // Crash a random node (possibly downing a whole group).
        const int id = static_cast<int>(chaos.Uniform(
            static_cast<uint64_t>(cluster.num_nodes())));
        DL_DISCARD_STATUS("chaos step; failing a downed node is fine",
                          cluster.FailNode(id));
        break;
      }
      case 1: {  // Recover a random node (no-op error if it is up).
        const int id = static_cast<int>(chaos.Uniform(
            static_cast<uint64_t>(cluster.num_nodes())));
        DL_DISCARD_STATUS("chaos step; recovering an up node is fine",
                          cluster.RecoverNode(id));
        break;
      }
      case 2: {  // Flicker one client-visible fault off and back on.
        reg.Deactivate("mint_replica_read");  // No-op if already disarmed.
        break;
      }
      default: {
        DL_DISCARD_STATUS(
            "chaos step; may already be armed",
            reg.Activate("mint_replica_read", "10%return(unavailable)"));
        break;
      }
    }
    if (step == kSteps / 2) {
      // Mid-storm server restart on the same port. Shutdown drains: every
      // acknowledged request finished executing before the listener died.
      server->Shutdown();
      server_options.port = port;
      server = std::make_unique<server::KvServer>(&cluster, server_options);
      Status restarted = server->Start();
      for (int retry = 0; retry < 50 && !restarted.ok(); ++retry) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        restarted = server->Start();
      }
      ASSERT_TRUE(restarted.ok()) << restarted.ToString();
    }
  }

  for (int t = 0; t < kWriters; ++t) threads[t].join();
  writers_done.store(true, std::memory_order_release);
  threads.back().join();

  const uint64_t distinct_fired = reg.DistinctFired();
  std::string fired_names;
  std::string silent_names;
  for (failpoint::FailPoint* fp : reg.List()) {
    if (fp->hits() > 0) {
      fired_names += fp->name() + " ";
      sweep_fired->insert(fp->name());
    } else {
      silent_names += fp->name() + " ";
    }
  }
  reg.DeactivateAll();

  // Heal: recover every node. A down node replays its AOF; an up node is
  // crash-cycled so degraded read-only engines (injected append failures)
  // come back writable and re-verify their on-disk state. Everything a
  // node acknowledged survives Fail() — the env keeps every appended byte;
  // only process-crash simulation drops volatile tails, and this suite
  // never does that to an acknowledged write.
  for (int id = 0; id < cluster.num_nodes(); ++id) {
    if (cluster.node(id)->up()) {
      ASSERT_TRUE(cluster.FailNode(id).ok());
    }
    Result<double> recovered = cluster.RecoverNode(id);
    ASSERT_TRUE(recovered.ok())
        << "node " << id << ": " << recovered.status().ToString();
  }

  // Invariant (b): no torn or cross-version value was ever served.
  EXPECT_EQ(value_violations.load(), 0) << first_violation;

  // Invariant (a): every acknowledged write is durable and readable.
  rpc::RpcClient::Options verify_options;
  verify_options.max_reconnects = 10;
  rpc::RpcClient verifier("127.0.0.1", port, verify_options);
  ASSERT_FALSE(acked.empty()) << "storm was so hostile nothing was acked";
  for (const AckedWrite& write : acked) {
    Result<std::string> got = verifier.Get(write.key, 1);
    if (!got.ok()) {
      // Per-node forensics: distinguish "record gone from every replica's
      // engine" from "serving path cannot reach it".
      std::string diag;
      for (int id = 0; id < cluster.num_nodes(); ++id) {
        Result<std::string> direct = cluster.node(id)->db()->Get(write.key, 1);
        diag += " node" + std::to_string(id) + "=" +
                (direct.ok() ? "present" : direct.status().ToString());
      }
      ASSERT_TRUE(got.ok())
          << "acknowledged write lost: " << write.key << " ("
          << got.status().ToString() << ");" << diag;
    }
    EXPECT_EQ(*got, write.value) << "acknowledged write torn: " << write.key;
  }

  // The schedule must genuinely exercise the fault surface, not tiptoe
  // around it. How many distinct points fire in ONE storm is stochastic
  // (probabilistic arming meets thread scheduling), so the per-schedule
  // floor only rules out a structurally dead storm; the sweep-wide union
  // check in the TEST body holds the real coverage bar.
  EXPECT_GE(distinct_fired, 8u)
      << "fired: " << fired_names << "| silent: " << silent_names;

  server->Shutdown();
}

TEST(ChaosSchedules, AckedWritesSurviveSeededFaultStorms) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DDIRECTLOAD_FAILPOINTS=ON";
  }
  const int schedules = NumSchedules();
  const uint64_t first = FirstSeed();
  // Disjoint seed ranges per shard-count configuration: the sharded sweep
  // explores different storms, not a rerun of the single-shard ones. CI
  // narrows each sweep with DIRECTLOAD_CHAOS_SEEDS (a per-configuration
  // count) and replays one storm with DIRECTLOAD_CHAOS_FIRST_SEED.
  struct ShardConfig {
    uint32_t shards;
    uint64_t seed_base;
  };
  std::set<std::string> sweep_fired;
  for (const ShardConfig& config :
       {ShardConfig{1, first}, ShardConfig{4, first + 10000}}) {
    for (int i = 0; i < schedules; ++i) {
      RunSchedule(config.seed_base + static_cast<uint64_t>(i), config.shards,
                  &sweep_fired);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // Sweep-wide coverage bar: across all schedules, the storms must fire
  // nearly the whole armed surface (14 points in kBaseFaults). Skipped for
  // a narrowed replay (DIRECTLOAD_CHAOS_SEEDS=1) where a single schedule's
  // draw cannot be expected to span the surface.
  if (schedules * 2 >= 8) {
    std::string union_names;
    for (const std::string& name : sweep_fired) union_names += name + " ";
    EXPECT_GE(sweep_fired.size(), 12u) << "union fired: " << union_names;
  }
}

// ---------------------------------------------------------------------------
// Suite 3: bulk loads mixed into the storm.
// ---------------------------------------------------------------------------

/// The bulk-storm fault surface. Node crashes are deliberately excluded: a
/// slice is staged on the key's LIVE replicas only, so a load acked during a
/// replica outage legitimately commits a version some replica never saw —
/// the same non-invariant as deletes in the live-write storm. Everything
/// else is fair game: wire corruption (the per-hop slice checksum must turn
/// it into a repairable NACK, never into wrong bytes), injected ingest
/// failures, transport faults, admission rejections, and a mid-storm server
/// restart.
const std::pair<const char*, const char*> kBulkStormFaults[] = {
    {"bulk_slice_corrupt", "33%corrupt"},
    {"qindb_ingest_append", "2%return(io)"},
    {"mint_replica_read", "10%return(unavailable)"},
    {"qindb_get", "4%return(io)"},
    {"ssd_file_read_corrupt", "4%corrupt"},
    {"ssd_file_sync", "delay(1)"},
    {"aof_roll_segment", "delay(1)"},
    {"rpc_connect", "10%return(unavailable)"},
    {"server_enqueue", "2%return(busy)"},
};

/// Coverage aggregated across a sweep's schedules: any single storm may be
/// gentle, but the sweep as a whole must exercise the repair machinery.
struct BulkStormCoverage {
  uint64_t checksum_nacks = 0;
  uint64_t slices_resent = 0;
  uint64_t max_distinct_fired = 0;
};

void RunBulkSchedule(uint64_t seed, uint32_t num_shards,
                     BulkStormCoverage* coverage) {
  SCOPED_TRACE("bulk schedule seed " + std::to_string(seed) +
               " shards=" + std::to_string(num_shards));
  Registry& reg = Registry::Instance();
  reg.DeactivateAll();
  reg.ResetCountersForTesting();
  reg.SetSeed(7000 + seed);

  mint::MintOptions cluster_options;
  cluster_options.num_groups = 2;
  cluster_options.nodes_per_group = 2;
  cluster_options.replicas = 2;
  cluster_options.parallel_reads = true;
  cluster_options.node_geometry = SmallGeometry();
  cluster_options.engine.num_shards = num_shards;
  cluster_options.engine.aof.segment_bytes = 16 << 10;
  cluster_options.engine.cache_bytes = 1 << 20;
  cluster_options.seed = seed;
  mint::MintCluster cluster(cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  server::KvServerOptions server_options;
  server_options.num_workers = 4;
  auto server = std::make_unique<server::KvServer>(&cluster, server_options);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  for (const auto& [name, spec] : kBulkStormFaults) {
    ASSERT_TRUE(reg.Activate(name, spec).ok()) << name << "=" << spec;
  }

  rpc::RpcClient::Options chaos_client;
  chaos_client.connect_timeout_ms = 500;
  chaos_client.request_timeout_ms = 2000;
  chaos_client.max_reconnects = 3;
  chaos_client.backoff_initial_ms = 2;
  chaos_client.backoff_max_ms = 20;
  chaos_client.retry_budget_ms = 4000;

  // Live writers keep the normal write path hot underneath the bulk loads;
  // their acked-write invariant must hold exactly as in the live storm.
  std::mutex acked_mu;
  std::vector<AckedWrite> acked;
  std::atomic<bool> stop_chaos{false};
  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 60;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      rpc::RpcClient::Options options = chaos_client;
      options.backoff_seed = seed * 37 + static_cast<uint64_t>(t) + 1;
      rpc::RpcClient client("127.0.0.1", port, options);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string key = "bs" + std::to_string(seed) + ":t" +
                                std::to_string(t) + ":k" + std::to_string(i);
        if (client.Put(key, 1, ValueFor(key)).ok()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.push_back(AckedWrite{key, ValueFor(key)});
        }
      }
    });
  }

  // The chaos driver: one mid-storm server restart plus read-fault flicker.
  std::thread chaos_thread([&] {
    Random chaos(seed ^ 0xb41f);
    for (int step = 0; step < 24 && !stop_chaos.load(); ++step) {
      std::this_thread::sleep_for(std::chrono::milliseconds(8));
      if (chaos.Uniform(2) == 0) {
        reg.Deactivate("mint_replica_read");
      } else {
        DL_DISCARD_STATUS(
            "chaos step; may already be armed",
            reg.Activate("mint_replica_read", "10%return(unavailable)"));
      }
      if (step == 12) {
        server->Shutdown();
        server_options.port = port;
        server =
            std::make_unique<server::KvServer>(&cluster, server_options);
        Status restarted = server->Start();
        for (int retry = 0; retry < 50 && !restarted.ok(); ++retry) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          restarted = server->Start();
        }
        ASSERT_TRUE(restarted.ok()) << restarted.ToString();
      }
    }
  });

  // Sequential bulk loads, one version each, from the storm's main thread.
  // The invariant is all-or-nothing per load: an OK load must serve every
  // pair; a failed one may have committed (the lost-ack ambiguity of any
  // at-most-once protocol) but must never be PARTIALLY visible.
  constexpr int kLoads = 6;
  constexpr int kPairsPerLoad = 60;
  std::vector<Status> load_status;
  bifrost::wire::BulkLoadReport total_report;
  for (int load = 0; load < kLoads; ++load) {
    const uint64_t version = 2 + static_cast<uint64_t>(load);
    std::vector<bifrost::ShippedPair> pairs;
    for (int i = 0; i < kPairsPerLoad; ++i) {
      bifrost::ShippedPair pair;
      pair.key = "blk" + std::to_string(version) + ":k" + std::to_string(i);
      pair.value = ValueFor(pair.key);
      pairs.push_back(std::move(pair));
    }
    rpc::RpcClient::Options options = chaos_client;
    options.backoff_seed = seed * 41 + static_cast<uint64_t>(load);
    rpc::RpcClient client("127.0.0.1", port, options);
    bifrost::wire::BulkLoadOptions load_options;
    load_options.slice_bytes = 2048;
    load_options.send_window = 4;
    bifrost::wire::BulkLoader loader(&client, load_options);
    bifrost::wire::BulkLoadReport report;
    load_status.push_back(
        loader.Load(version, pairs, {}, {}, &report));
    total_report.checksum_nacks += report.checksum_nacks;
    total_report.slices_resent += report.slices_resent;
  }

  for (std::thread& t : writers) t.join();
  stop_chaos.store(true);
  chaos_thread.join();
  const uint64_t distinct_fired = reg.DistinctFired();
  reg.DeactivateAll();

  // Post-storm verification over a clean channel.
  rpc::RpcClient::Options verify_options;
  verify_options.max_reconnects = 10;
  rpc::RpcClient verifier("127.0.0.1", port, verify_options);

  int loads_ok = 0;
  for (int load = 0; load < kLoads; ++load) {
    const uint64_t version = 2 + static_cast<uint64_t>(load);
    SCOPED_TRACE("load version " + std::to_string(version) + ": " +
                 load_status[load].ToString());
    int visible = 0;
    for (int i = 0; i < kPairsPerLoad; ++i) {
      const std::string key =
          "blk" + std::to_string(version) + ":k" + std::to_string(i);
      Result<std::string> got = verifier.Get(key, version);
      if (got.ok()) {
        ++visible;
        EXPECT_EQ(*got, ValueFor(key)) << "torn bulk pair: " << key;
      } else {
        ASSERT_TRUE(got.status().IsNotFound())
            << key << ": " << got.status().ToString();
      }
    }
    if (load_status[load].ok()) {
      ++loads_ok;
      EXPECT_EQ(visible, kPairsPerLoad)
          << "acked load v" << version << " partially visible";
    } else {
      EXPECT_TRUE(visible == 0 || visible == kPairsPerLoad)
          << "failed load v" << version << " is PARTIALLY visible ("
          << visible << "/" << kPairsPerLoad << ")";
    }
  }
  std::string statuses;
  for (const Status& s : load_status) statuses += s.ToString() + "; ";
  EXPECT_GT(loads_ok, 0) << "storm was so hostile no load ever committed: "
                         << statuses;

  for (const AckedWrite& write : acked) {
    Result<std::string> got = verifier.Get(write.key, 1);
    ASSERT_TRUE(got.ok()) << "acknowledged write lost during bulk storm: "
                          << write.key << " (" << got.status().ToString()
                          << ")";
    EXPECT_EQ(*got, write.value) << "acknowledged write torn: " << write.key;
  }

  coverage->checksum_nacks += total_report.checksum_nacks;
  coverage->slices_resent += total_report.slices_resent;
  coverage->max_distinct_fired =
      std::max(coverage->max_distinct_fired, distinct_fired);

  server->Shutdown();
}

TEST(ChaosSchedules, BulkLoadsAreAllOrNothingUnderFaultStorms) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DDIRECTLOAD_FAILPOINTS=ON";
  }
  const int schedules = std::max(1, NumSchedules() / 5);
  const uint64_t first = FirstSeed();
  BulkStormCoverage coverage;
  for (const uint32_t shards : {1u, 4u}) {
    for (int i = 0; i < schedules; ++i) {
      RunBulkSchedule(first + 20000 + static_cast<uint64_t>(shards) * 1000 +
                          static_cast<uint64_t>(i),
                      shards, &coverage);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The sweep must genuinely exercise the repair machinery: wire corruption
  // fired and was converted into NACK + re-send somewhere, and at least one
  // storm lit up a meaningful slice of the fault surface.
  EXPECT_GT(coverage.checksum_nacks, 0u)
      << "wire corruption never fired across the sweep";
  EXPECT_GE(coverage.slices_resent, coverage.checksum_nacks);
  EXPECT_GE(coverage.max_distinct_fired, 4u);
}

}  // namespace
}  // namespace directload
