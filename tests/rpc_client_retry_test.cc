// RpcClient reconnect/backoff behavior: the capped-exponential schedule and
// its jitter bounds (pinned via BackoffDelayMsForTest, no sleeping), the
// seeded determinism chaos schedules rely on, the wall-clock retry budget
// against a connection-refused target, and reconnect-and-resend across a
// server restart on the same port.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "mint/cluster.h"
#include "rpc/client.h"
#include "rpc/socket.h"
#include "server/kv_server.h"

namespace directload::rpc {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A loopback port with nothing listening: bind an ephemeral listener, read
/// its port, close it. Connects are then refused instantly, which keeps the
/// retry-budget measurements about the budget rather than connect timeouts.
uint16_t ClosedPort() {
  Result<Socket> listener = Listen("127.0.0.1", 0, 1);
  EXPECT_TRUE(listener.ok());
  Result<uint16_t> port = LocalPort(*listener);
  EXPECT_TRUE(port.ok());
  return *port;  // Listener closes here.
}

TEST(RpcClientBackoffTest, ScheduleDoublesFromInitialAndClampsAtCap) {
  RpcClient::Options options;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 200;
  RpcClient client("127.0.0.1", 1, options);

  // Base for attempt k is min(initial << (k-1), cap); the jittered delay
  // lands in [base - base/2, base].
  int expected_base = 5;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const int delay = client.BackoffDelayMsForTest(attempt);
    EXPECT_GE(delay, expected_base - expected_base / 2)
        << "attempt " << attempt;
    EXPECT_LE(delay, expected_base) << "attempt " << attempt;
    if (expected_base < 200) expected_base = std::min(200, expected_base * 2);
  }

  // Deep attempts stay clamped at the cap.
  for (int attempt = 13; attempt <= 40; ++attempt) {
    const int delay = client.BackoffDelayMsForTest(attempt);
    EXPECT_GE(delay, 100);
    EXPECT_LE(delay, 200);
  }
}

TEST(RpcClientBackoffTest, JitterIsDeterministicPerSeed) {
  RpcClient::Options options;
  options.backoff_seed = 42;
  RpcClient a("127.0.0.1", 1, options);
  RpcClient b("127.0.0.1", 1, options);
  std::vector<int> seq_a, seq_b;
  for (int attempt = 1; attempt <= 16; ++attempt) {
    seq_a.push_back(a.BackoffDelayMsForTest(attempt));
    seq_b.push_back(b.BackoffDelayMsForTest(attempt));
  }
  // Same seed, same schedule — the property chaos replays depend on.
  EXPECT_EQ(seq_a, seq_b);

  options.backoff_seed = 43;
  RpcClient c("127.0.0.1", 1, options);
  std::vector<int> seq_c;
  for (int attempt = 1; attempt <= 16; ++attempt) {
    seq_c.push_back(c.BackoffDelayMsForTest(attempt));
  }
  // A different seed draws a different jitter stream. (Equality of every
  // one of 16 jittered draws across seeds would be astronomically
  // unlikely, not merely flaky.)
  EXPECT_NE(seq_a, seq_c);
}

TEST(RpcClientBackoffTest, RetryBudgetBoundsWallClock) {
  RpcClient::Options options;
  options.connect_timeout_ms = 250;
  options.max_reconnects = 1000;  // The budget, not the count, must stop it.
  options.backoff_initial_ms = 40;
  options.backoff_max_ms = 40;
  options.retry_budget_ms = 150;
  RpcClient client("127.0.0.1", ClosedPort(), options);

  const Clock::time_point start = Clock::now();
  const Status s = client.Ping();
  const double elapsed_ms = ElapsedMs(start);

  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  // At least one jittered backoff (>= 20ms) was slept before the budget
  // cut the loop off; well under the 1000-reconnect worst case.
  EXPECT_GE(elapsed_ms, 20.0);
  EXPECT_LE(elapsed_ms, 2000.0);
}

TEST(RpcClientBackoffTest, NoReconnectsFailsFast) {
  RpcClient::Options options;
  options.connect_timeout_ms = 250;
  options.max_reconnects = 0;  // Probe configuration: a retry IS a miss.
  RpcClient client("127.0.0.1", ClosedPort(), options);

  const Clock::time_point start = Clock::now();
  EXPECT_TRUE(client.Ping().IsUnavailable());
  // No backoff sleeps at all: one refused connect and out.
  EXPECT_LE(ElapsedMs(start), 1000.0);
}

TEST(RpcClientReconnectTest, ReconnectsAcrossServerRestartOnSamePort) {
  mint::MintOptions mint_options;
  mint_options.num_groups = 1;
  mint_options.nodes_per_group = 1;
  mint_options.replicas = 1;
  mint_options.parallel_reads = false;
  mint_options.engine.aof.segment_bytes = 4 << 20;
  mint::MintCluster cluster(mint_options);
  ASSERT_TRUE(cluster.Start().ok());

  auto server = std::make_unique<server::KvServer>(&cluster,
                                                   server::KvServerOptions());
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  RpcClient client("127.0.0.1", port);
  ASSERT_TRUE(client.Put("k", 1, "v1").ok());

  // Bounce the server on the same port; the established connection dies.
  server->Shutdown();
  server.reset();
  server::KvServerOptions restart_options;
  restart_options.port = port;
  server = std::make_unique<server::KvServer>(&cluster, restart_options);
  ASSERT_TRUE(server->Start().ok());

  // The same client object must reconnect-and-resend transparently: every
  // operation is idempotent, so replaying across the new connection is
  // safe, and the default options allow reconnects.
  Result<std::string> read = client.Get("k", 1);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "v1");
  EXPECT_TRUE(client.Put("k", 2, "v2").ok());
  server->Shutdown();
}

}  // namespace
}  // namespace directload::rpc
