// Fault-injection tests: silent media corruption, torn writes, crashed
// nodes, corrupted transmissions. Every persisted format in the project
// carries checksums; these tests verify that damage is *detected* (never
// silently served) and that recovery degrades the way the paper describes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "aof/aof_manager.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "lsm/db.h"
#include "lsm/wal.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.pages_per_block = 8;
  g.num_blocks = 4096;
  return g;
}

class FaultTest : public ::testing::TestWithParam<ssd::InterfaceMode> {
 protected:
  FaultTest()
      : env_(NewSsdEnv(GetParam(), SmallGeometry(), ssd::LatencyModel(),
                       &clock_)) {}

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

TEST_P(FaultTest, CorruptionHookFlipsExactlyOneBit) {
  auto file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(8192, 'a')).ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(env_->CorruptFileByteForTesting("f", 5000).ok());
  auto reader = env_->NewRandomAccessFile("f");
  ASSERT_TRUE(reader.ok());
  std::string out;
  ASSERT_TRUE((*reader)->Read(0, 8192, &out).ok());
  int diffs = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] != 'a') {
      ++diffs;
      EXPECT_EQ(i, 5000u);
    }
  }
  EXPECT_EQ(diffs, 1);
}

TEST_P(FaultTest, CorruptingUnpersistedOffsetRejected) {
  auto file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("tiny").ok());  // Still in the tail buffer.
  EXPECT_FALSE(env_->CorruptFileByteForTesting("f", 2).ok());
  EXPECT_TRUE(env_->CorruptFileByteForTesting("missing", 0).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(Modes, FaultTest,
                         ::testing::Values(ssd::InterfaceMode::kPageMappedFtl,
                                           ssd::InterfaceMode::kNativeBlock),
                         [](const auto& info) {
                           return info.param ==
                                          ssd::InterfaceMode::kNativeBlock
                                      ? "Native"
                                      : "Ftl";
                         });

// ---------------------------------------------------------------------------
// AOF-level corruption
// ---------------------------------------------------------------------------

class AofFaultTest : public ::testing::Test {
 protected:
  AofFaultTest()
      : env_(NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                       ssd::LatencyModel(), &clock_)) {}

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

TEST_F(AofFaultTest, CorruptedRecordDetectedOnRead) {
  aof::AofOptions options;
  options.segment_bytes = 256 << 10;
  auto mgr = std::move(aof::AofManager::Open(env_.get(), options)).value();
  Result<aof::RecordAddress> addr =
      mgr->AppendRecord("key", 1, aof::kFlagNone, std::string(10000, 'v'));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(mgr->SealActive().ok());  // Flush everything to the device.

  // Flip a bit in the middle of the record's value.
  ASSERT_TRUE(env_->CorruptFileByteForTesting("aof_00000000.dat",
                                              addr->offset + 2000)
                  .ok());
  aof::RecordView view;
  EXPECT_TRUE(mgr->ReadRecord(*addr, 0, &view).IsCorruption());
}

TEST_F(AofFaultTest, ScanSurfacesMidSegmentCorruptionLoudly) {
  aof::AofOptions options;
  options.segment_bytes = 256 << 10;
  std::vector<aof::RecordAddress> addrs;
  {
    auto mgr = std::move(aof::AofManager::Open(env_.get(), options)).value();
    for (int i = 0; i < 10; ++i) {
      Result<aof::RecordAddress> addr = mgr->AppendRecord(
          "key" + std::to_string(i), i, aof::kFlagNone,
          std::string(5000, 'v'));
      ASSERT_TRUE(addr.ok());
      addrs.push_back(*addr);
    }
    ASSERT_TRUE(mgr->SealActive().ok());
  }
  // Damage record 6 in place. Appends are prefix-persistent, so a record
  // that fails its checksum *inside* the persisted extent can only be
  // damaged media, never a torn tail — and records 7..9 sit unreachable
  // behind it. Recovery must refuse to adopt the segment as a shorter valid
  // prefix: that silent truncation is what would later license a checkpoint
  // (or a GC erase) to destroy the suffix permanently.
  ASSERT_TRUE(env_->CorruptFileByteForTesting("aof_00000000.dat",
                                              addrs[6].offset + 10)
                  .ok());
  Result<std::unique_ptr<aof::AofManager>> reopened =
      aof::AofManager::Open(env_.get(), options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
  // Fail-stop, not fail-erase: the damaged segment (with the intact records
  // behind the damage) stays on the device for repair from a replica.
  EXPECT_TRUE(env_->FileExists("aof_00000000.dat"));
}

// ---------------------------------------------------------------------------
// QinDB under faults
// ---------------------------------------------------------------------------

class QinDbFaultTest : public AofFaultTest {};

TEST_F(QinDbFaultTest, CorruptedValueNeverServedSilently) {
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 256 << 10;
  auto db = std::move(qindb::QinDb::Open(env_.get(), options)).value();
  const std::string value(20000, 'q');
  ASSERT_TRUE(db->Put("url:1", 1, value).ok());
  ASSERT_TRUE(db->aof().SealActive().ok());
  ASSERT_TRUE(env_->CorruptFileByteForTesting("aof_00000000.dat", 600).ok());
  Result<std::string> got = db->Get("url:1", 1);
  // Either detected corruption or (if the flip missed the record) intact
  // data — never silently wrong bytes.
  if (got.ok()) {
    EXPECT_EQ(*got, value);
  } else {
    EXPECT_TRUE(got.status().IsCorruption());
  }
}

TEST_F(QinDbFaultTest, CorruptCheckpointFallsBackToFullScan) {
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 128 << 10;
  Random rnd(4);
  std::map<std::string, std::string> expect;
  {
    auto db = std::move(qindb::QinDb::Open(env_.get(), options)).value();
    for (int i = 0; i < 60; ++i) {
      const std::string key = "url:" + std::to_string(i);
      const std::string value = rnd.NextString(2000);
      ASSERT_TRUE(db->Put(key, 1, value).ok());
      expect[key] = value;
    }
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  ASSERT_TRUE(env_->FileExists("checkpoint.dat"));
  ASSERT_TRUE(env_->CorruptFileByteForTesting("checkpoint.dat", 100).ok());

  // Open must not trust the damaged checkpoint: it falls back to the AOF
  // scan and recovers everything.
  auto db = std::move(qindb::QinDb::Open(env_.get(), options)).value();
  for (const auto& [key, value] : expect) {
    Result<std::string> got = db->Get(key, 1);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
}

TEST_F(QinDbFaultTest, HardCrashLosesOnlyUnflushedTail) {
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 128 << 10;
  {
    auto db = std::move(qindb::QinDb::Open(env_.get(), options)).value();
    // Large value: most pages flush through; the final partial page sits in
    // the writer's tail buffer.
    ASSERT_TRUE(db->Put("url:big", 1, std::string(50000, 'x')).ok());
    ASSERT_TRUE(db->Put("url:tiny", 1, "y").ok());
    // Hard crash: leak the engine so nothing closes/pads the tail.
    (void)db.release();
    env_->SimulateCrashForTesting();
  }
  auto db = std::move(qindb::QinDb::Open(env_.get(), options)).value();
  // The torn-tail records are gone (detected via checksums), not garbled.
  Result<std::string> big = db->Get("url:big", 1);
  if (big.ok()) {
    EXPECT_EQ(*big, std::string(50000, 'x'));
  } else {
    EXPECT_TRUE(big.status().IsNotFound());
  }
  Result<std::string> tiny = db->Get("url:tiny", 1);
  if (tiny.ok()) {
    EXPECT_EQ(*tiny, "y");
  } else {
    EXPECT_TRUE(tiny.status().IsNotFound());
  }
}

// ---------------------------------------------------------------------------
// LSM under faults
// ---------------------------------------------------------------------------

class LsmFaultTest : public ::testing::Test {
 protected:
  LsmFaultTest()
      : env_(NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, SmallGeometry(),
                       ssd::LatencyModel(), &clock_)) {}

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

TEST_F(LsmFaultTest, CorruptedSstBlockDetected) {
  lsm::LsmOptions options;
  options.write_buffer_bytes = 64 << 10;
  options.block_cache_bytes = 0;  // No cache: reads always hit the device.
  std::string table_name;
  {
    auto db = std::move(lsm::LsmDb::Open(env_.get(), options)).value();
    Random rnd(9);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          db->Put("key" + std::to_string(i), rnd.NextString(2000)).ok());
    }
    ASSERT_TRUE(db->ForceFlush().ok());
    for (const std::string& name : env_->ListFiles()) {
      if (name.find(".sst") != std::string::npos) table_name = name;
    }
    ASSERT_FALSE(table_name.empty());
    // Corrupt a data block (early in the file, away from footer/index).
    ASSERT_TRUE(env_->CorruptFileByteForTesting(table_name, 1000).ok());
    bool corruption_seen = false;
    for (int i = 0; i < 100; ++i) {
      Result<std::string> got = db->Get("key" + std::to_string(i));
      if (!got.ok()) {
        EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
        corruption_seen = true;
      }
    }
    EXPECT_TRUE(corruption_seen);
  }
}

TEST_F(LsmFaultTest, CorruptedWalSuffixDiscardedOnRecovery) {
  lsm::LsmOptions options;
  std::string wal_name;
  {
    auto db = std::move(lsm::LsmDb::Open(env_.get(), options)).value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), "v").ok());
    }
    for (const std::string& name : env_->ListFiles()) {
      if (name.rfind("wal_", 0) == 0) wal_name = name;
    }
    ASSERT_FALSE(wal_name.empty());
    // Corrupt a record near the middle of the synced prefix after a hard
    // crash (tail unsynced).
    (void)db.release();
    env_->SimulateCrashForTesting();
  }
  Result<uint64_t> size = env_->GetFileSize(wal_name);
  ASSERT_TRUE(size.ok());
  const uint64_t persisted = (*size / 4096) * 4096;  // Full pages only.
  if (persisted > 100) {
    ASSERT_TRUE(
        env_->CorruptFileByteForTesting(wal_name, persisted / 2).ok());
  }
  // Recovery succeeds with a clean prefix; damaged suffix is dropped.
  auto db = std::move(lsm::LsmDb::Open(env_.get(), options)).value();
  int present = 0;
  for (int i = 0; i < 200; ++i) {
    if (db->Get("key" + std::to_string(i)).ok()) ++present;
  }
  EXPECT_GT(present, 0);
  EXPECT_LT(present, 200);
}

TEST_F(LsmFaultTest, CorruptedManifestReportedNotMisapplied) {
  lsm::LsmOptions options;
  options.write_buffer_bytes = 64 << 10;
  {
    auto db = std::move(lsm::LsmDb::Open(env_.get(), options)).value();
    Random rnd(10);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          db->Put("key" + std::to_string(i), rnd.NextString(1000)).ok());
    }
    ASSERT_TRUE(db->ForceFlush().ok());
  }
  ASSERT_TRUE(env_->CorruptFileByteForTesting("MANIFEST", 40).ok());
  // A damaged manifest yields a truncated (prefix) state, never a crash or
  // garbage state: Open either succeeds with fewer tables or fails cleanly.
  auto db = lsm::LsmDb::Open(env_.get(), options);
  if (!db.ok()) {
    EXPECT_TRUE(db.status().IsCorruption() || db.status().IsNotFound())
        << db.status().ToString();
  }
}

}  // namespace
}  // namespace directload
