// Sharding battery: routing determinism and manifest validation, per-shard
// file layout and stats, cross-shard WriteBatch splitting/stitching (under
// concurrent readers), DropVersion fan-out, merged scans, per-shard
// recovery, and degraded-mode isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

ssd::Geometry SmallGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 2048;  // 64 MiB device.
  return g;
}

class ShardTest : public ::testing::Test {
 protected:
  ShardTest() { ResetEnv(); }

  void ResetEnv() {
    clock_.Reset();
    env_ = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, SmallGeometry(),
                     ssd::LatencyModel(), &clock_);
  }

  std::unique_ptr<QinDb> OpenDb(QinDbOptions options) {
    if (options.aof.segment_bytes == 64ull << 20) {
      options.aof.segment_bytes = 128 << 10;  // Small segments for tests.
    }
    auto db = QinDb::Open(env_.get(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
};

std::string KeyOf(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key-%06d", i);
  return buf;
}

TEST_F(ShardTest, RoutingIsDeterministicAcrossReopen) {
  QinDbOptions options;
  options.num_shards = 4;
  std::map<std::string, uint32_t> routed;
  {
    auto db = OpenDb(options);
    ASSERT_EQ(db->num_shards(), 4u);
    for (int i = 0; i < 200; ++i) {
      const std::string key = KeyOf(i);
      routed[key] = db->ShardOf(key);
      ASSERT_TRUE(db->Put(key, 1, "v" + key).ok());
    }
    // Same key, same call, same shard — trivially; across keys the hash
    // should actually spread the space.
    std::set<uint32_t> used;
    for (const auto& [key, shard] : routed) used.insert(shard);
    EXPECT_EQ(used.size(), 4u) << "200 keys landed on fewer than 4 shards";
  }
  {
    // Reopen with num_shards=0: the manifest supplies the layout and every
    // key must route to the shard that holds its records.
    QinDbOptions reopen;
    auto db = OpenDb(reopen);
    ASSERT_EQ(db->num_shards(), 4u);
    for (const auto& [key, shard] : routed) {
      EXPECT_EQ(db->ShardOf(key), shard) << key;
      Result<std::string> value = db->Get(key, 1);
      ASSERT_TRUE(value.ok()) << key << ": " << value.status().ToString();
      EXPECT_EQ(*value, "v" + key);
    }
  }
}

TEST_F(ShardTest, MismatchedShardCountFailsReopenWithClearError) {
  QinDbOptions options;
  options.num_shards = 4;
  { auto db = OpenDb(options); ASSERT_TRUE(db->Put("k", 1, "v").ok()); }

  QinDbOptions wrong;
  wrong.num_shards = 2;
  wrong.aof.segment_bytes = 128 << 10;
  auto reopened = QinDb::Open(env_.get(), wrong);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsInvalidArgument());
  // The error must name both counts so the operator can fix the config.
  const std::string msg = reopened.status().ToString();
  EXPECT_NE(msg.find("num_shards=4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("request 2"), std::string::npos) << msg;

  // num_shards=0 (adopt) and the exact count both still open.
  QinDbOptions adopt;
  adopt.aof.segment_bytes = 128 << 10;
  ASSERT_TRUE(QinDb::Open(env_.get(), adopt).ok());
  QinDbOptions exact;
  exact.num_shards = 4;
  exact.aof.segment_bytes = 128 << 10;
  ASSERT_TRUE(QinDb::Open(env_.get(), exact).ok());
}

TEST_F(ShardTest, MismatchedHashSeedFailsReopen) {
  QinDbOptions options;
  options.num_shards = 2;
  { OpenDb(options); }

  QinDbOptions wrong;
  wrong.shard_hash_seed = 0xdeadbeef;
  wrong.aof.segment_bytes = 128 << 10;
  auto reopened = QinDb::Open(env_.get(), wrong);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsInvalidArgument());
  EXPECT_NE(reopened.status().ToString().find("seed"), std::string::npos);
}

TEST_F(ShardTest, LegacyUnshardedFilesAdoptSingleShardLayout) {
  // An env written by the pre-sharding engine: unprefixed files, no
  // manifest. Simulate by opening at num_shards=1 and deleting the
  // manifest the open wrote.
  QinDbOptions one;
  one.num_shards = 1;
  {
    auto db = OpenDb(one);
    ASSERT_TRUE(db->Put("legacy", 1, "value").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  ASSERT_TRUE(env_->FileExists("aof_00000000.dat"));
  ASSERT_TRUE(env_->DeleteFile("shard_manifest.dat").ok());

  // A sharded open must refuse rather than strand the legacy files.
  QinDbOptions four;
  four.num_shards = 4;
  four.aof.segment_bytes = 128 << 10;
  auto sharded = QinDb::Open(env_.get(), four);
  ASSERT_FALSE(sharded.ok());
  EXPECT_TRUE(sharded.status().IsInvalidArgument());

  // The default open adopts the data as one shard, even on a many-core
  // machine where num_shards=0 would otherwise resolve wider.
  QinDbOptions adopt;
  adopt.aof.segment_bytes = 128 << 10;
  auto db = QinDb::Open(env_.get(), adopt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->num_shards(), 1u);
  Result<std::string> value = (*db)->Get("legacy", 1);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "value");
}

TEST_F(ShardTest, ShardsOwnPrefixedDisjointFiles) {
  QinDbOptions options;
  options.num_shards = 2;
  auto db = OpenDb(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, std::string(200, 'x')).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  bool s0_aof = false, s1_aof = false, s0_ckpt = false, s1_ckpt = false;
  for (const std::string& name : env_->ListFiles()) {
    s0_aof |= name.rfind("s00_aof_", 0) == 0;
    s1_aof |= name.rfind("s01_aof_", 0) == 0;
    s0_ckpt |= name == "s00_checkpoint.dat";
    s1_ckpt |= name == "s01_checkpoint.dat";
    // No unprefixed engine files may exist in a sharded layout.
    EXPECT_NE(name.rfind("aof_", 0), 0u) << name;
    EXPECT_NE(name, "checkpoint.dat");
  }
  EXPECT_TRUE(s0_aof && s1_aof && s0_ckpt && s1_ckpt);
}

TEST_F(ShardTest, PerShardStatsAccountRoutedOps) {
  QinDbOptions options;
  options.num_shards = 4;
  auto db = OpenDb(options);

  std::map<uint32_t, uint64_t> expected_puts;
  for (int i = 0; i < 120; ++i) {
    const std::string key = KeyOf(i);
    ASSERT_TRUE(db->Put(key, 1, "v").ok());
    ++expected_puts[db->ShardOf(key)];
  }
  ASSERT_TRUE(db->Del(KeyOf(7), 1).ok());

  uint64_t total_puts = 0;
  uint64_t total_live = 0;
  for (uint32_t s = 0; s < db->num_shards(); ++s) {
    const ShardStatsSnapshot snap = db->shard_stats(s);
    EXPECT_EQ(snap.shard_id, s);
    EXPECT_EQ(snap.puts, expected_puts[s]) << "shard " << s;
    EXPECT_EQ(snap.dels, s == db->ShardOf(KeyOf(7)) ? 1u : 0u);
    EXPECT_FALSE(snap.degraded);
    total_puts += snap.puts;
    total_live += snap.live_entries;
  }
  EXPECT_EQ(total_puts, 120u);
  // live_entries counts indexed (non-purged) entries: the Del flags its
  // pair deleted but the entry stays indexed until GC purges it.
  EXPECT_EQ(total_live, 120u);
  EXPECT_EQ(db->LiveEntryCount(), 120u);
  // The facade aggregate equals the per-shard sum.
  EXPECT_EQ(db->stats().puts.load(), 120u);
}

TEST_F(ShardTest, CrossShardBatchStitchesStatusesInSubmissionOrder) {
  QinDbOptions options;
  options.num_shards = 4;
  auto db = OpenDb(options);

  ASSERT_TRUE(db->Put("existing", 1, "old").ok());

  WriteBatch batch;
  for (int i = 0; i < 40; ++i) batch.Put(KeyOf(i), 1, "v" + KeyOf(i));
  batch.Del("missing", 9);            // NotFound — fails alone.
  batch.Put("existing", 2, "new");    // Fine.
  batch.Put("", 1, "bad");            // InvalidArgument — fails alone.
  for (int i = 40; i < 60; ++i) batch.Put(KeyOf(i), 1, "v" + KeyOf(i));

  Status overall = db->Write(batch);
  // First failure in SUBMISSION order is the Del, regardless of which
  // shard's sub-batch committed first.
  EXPECT_TRUE(overall.IsNotFound()) << overall.ToString();
  ASSERT_EQ(batch.statuses().size(), 63u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(batch.statuses()[i].ok()) << i;
  }
  EXPECT_TRUE(batch.statuses()[40].IsNotFound());
  EXPECT_TRUE(batch.statuses()[41].ok());
  EXPECT_TRUE(batch.statuses()[42].IsInvalidArgument());
  for (int i = 43; i < 63; ++i) {
    EXPECT_TRUE(batch.statuses()[i].ok()) << i;
  }
  for (int i = 0; i < 60; ++i) {
    Result<std::string> value = db->Get(KeyOf(i), 1);
    ASSERT_TRUE(value.ok()) << i;
    EXPECT_EQ(*value, "v" + KeyOf(i));
  }
  EXPECT_EQ(*db->Get("existing", 2), "new");
}

TEST_F(ShardTest, CrossShardBatchesCommitUnderConcurrentReaders) {
  QinDbOptions options;
  options.num_shards = 4;
  options.auto_gc = false;  // Keep the value set stable for readers.
  auto db = OpenDb(options);

  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "gen-0").ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread readers[2];
  for (std::thread& t : readers) {
    t = std::thread([&] {
      Random rnd(::testing::UnitTest::GetInstance()->random_seed() + 17);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string key = KeyOf(rnd.Uniform(kKeys));
        Result<std::string> value = db->GetLatest(key);
        // Every key always has at least gen-0; any read failure is a bug.
        if (!value.ok() || value->rfind("gen-", 0) != 0) {
          reader_errors.fetch_add(1);
        }
      }
    });
  }

  // Writers push cross-shard batches; each batch spans many shards, so the
  // facade's split/enqueue/complete path runs constantly under read load.
  std::thread writers[2];
  for (int w = 0; w < 2; ++w) {
    writers[w] = std::thread([&, w] {
      for (int gen = 1; gen <= 25; ++gen) {
        WriteBatch batch;
        char value[16];
        std::snprintf(value, sizeof(value), "gen-%d", gen);
        for (int i = w; i < kKeys; i += 2) {
          batch.Put(KeyOf(i), 1 + static_cast<uint64_t>(gen), value);
        }
        Status s = db->Write(batch);
        if (!s.ok()) {
          reader_errors.fetch_add(1000);  // Surface loudly.
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(reader_errors.load(), 0);
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(*db->Get(KeyOf(i), 26), "gen-25") << i;
  }
}

TEST_F(ShardTest, DropVersionFansOutAndSumsCounts) {
  QinDbOptions options;
  options.num_shards = 4;
  auto db = OpenDb(options);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "v1").ok());
    ASSERT_TRUE(db->Put(KeyOf(i), 2, "v2").ok());
  }
  Result<uint64_t> dropped = db->DropVersion(1);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 80u);
  EXPECT_EQ(db->VersionCounts().count(1), 0u);
  EXPECT_EQ(db->VersionCounts()[2], 80u);

  // Mixed batch: the DropVersion rides with puts and reports its count.
  WriteBatch batch;
  batch.Put("after", 3, "v3");
  batch.DropVersion(2);
  ASSERT_TRUE(db->Write(batch).ok());
  EXPECT_EQ(batch.dropped(1), 80u);
}

TEST_F(ShardTest, MergedScannerYieldsGloballySortedStream) {
  QinDbOptions options;
  options.num_shards = 4;
  auto db = OpenDb(options);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), 1, "v" + KeyOf(i)).ok());
  }
  ASSERT_TRUE(db->Del(KeyOf(75), 1).ok());

  auto scan = db->NewScanner(1);
  scan.SeekToFirst();
  std::string prev;
  int seen = 0;
  for (; scan.Valid(); scan.Next()) {
    const std::string key = scan.key().ToString();
    if (seen > 0) EXPECT_LT(prev, key);  // Strictly ascending merge.
    EXPECT_NE(key, KeyOf(75));           // Deleted pair is invisible.
    Result<std::string> value = scan.value();
    ASSERT_TRUE(value.ok()) << key;
    EXPECT_EQ(*value, "v" + key);
    prev = key;
    ++seen;
  }
  EXPECT_EQ(seen, 149);

  // Seek lands mid-stream regardless of which shard holds the bound.
  scan.Seek(KeyOf(100));
  ASSERT_TRUE(scan.Valid());
  EXPECT_EQ(scan.key().ToString(), KeyOf(100));
}

TEST_F(ShardTest, ShardsRecoverIndependentlyAcrossReopen) {
  QinDbOptions options;
  options.num_shards = 4;
  options.checkpoint_interval_bytes = 8 << 10;  // Force some checkpoints.
  options.aof.log_deletes = true;  // DELs must survive the reopen.
  {
    auto db = OpenDb(options);
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db->Put(KeyOf(i), 1, std::string(100, 'a' + (i % 26))).ok());
    }
    for (int i = 0; i < 300; i += 3) {
      ASSERT_TRUE(db->Del(KeyOf(i), 1).ok());
    }
    ASSERT_TRUE(db->SealActive().ok());
  }
  QinDbOptions reopen;
  auto db = OpenDb(reopen);
  ASSERT_EQ(db->num_shards(), 4u);
  for (int i = 0; i < 300; ++i) {
    Result<std::string> value = db->Get(KeyOf(i), 1);
    if (i % 3 == 0) {
      EXPECT_TRUE(value.status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(value.ok()) << i << ": " << value.status().ToString();
      EXPECT_EQ(*value, std::string(100, 'a' + (i % 26)));
    }
  }
  // Exactly the 200 non-deleted pairs are live; deleted entries may or may
  // not still be indexed depending on how far the per-shard auto-GC got.
  EXPECT_EQ(db->VersionCounts()[1], 200u);
  EXPECT_GE(db->LiveEntryCount(), 200u);
}

TEST_F(ShardTest, SingleShardKeepsLegacyFileNames) {
  QinDbOptions options;
  options.num_shards = 1;
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Put("k", 1, "v").ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_TRUE(env_->FileExists("aof_00000000.dat"));
  EXPECT_TRUE(env_->FileExists("checkpoint.dat"));
  EXPECT_TRUE(env_->FileExists("shard_manifest.dat"));
  EXPECT_EQ(db->ShardOf("anything"), 0u);
}

}  // namespace
}  // namespace directload::qindb
