#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "memtable/mem_index.h"
#include "memtable/skiplist.h"

namespace directload {
namespace {

// ---------------------------------------------------------------------------
// Generic skip list
// ---------------------------------------------------------------------------

struct IntCmp {
  int operator()(uint64_t a, uint64_t b) const {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp(), &arena);
  Random rnd(7);
  std::set<uint64_t> model;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rnd.Uniform(10000);
    if (model.insert(v).second) list.Insert(v);
  }
  EXPECT_EQ(list.size(), model.size());
  for (uint64_t v = 0; v < 10000; v += 7) {
    EXPECT_EQ(list.Contains(v), model.count(v) == 1) << v;
  }
}

TEST(SkipListTest, IterationMatchesSortedOrder) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp(), &arena);
  std::set<uint64_t> model;
  Random rnd(13);
  for (int i = 0; i < 500; ++i) {
    const uint64_t v = rnd.Uniform(100000);
    if (model.insert(v).second) list.Insert(v);
  }
  SkipList<uint64_t, IntCmp>::Iterator it(&list);
  it.SeekToFirst();
  for (uint64_t expected : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), expected);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, SeekFindsLowerBound) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp(), &arena);
  for (uint64_t v : {10u, 20u, 30u}) list.Insert(v);
  SkipList<uint64_t, IntCmp>::Iterator it(&list);
  it.Seek(15);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20u);
  it.Seek(30);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30u);
  it.Seek(31);
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, PrevAndSeekToLast) {
  Arena arena;
  SkipList<uint64_t, IntCmp> list(IntCmp(), &arena);
  for (uint64_t v : {1u, 2u, 3u, 4u}) list.Insert(v);
  SkipList<uint64_t, IntCmp>::Iterator it(&list);
  it.SeekToLast();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 4u);
  it.Prev();
  EXPECT_EQ(it.key(), 3u);
  it.Prev();
  it.Prev();
  EXPECT_EQ(it.key(), 1u);
  it.Prev();
  EXPECT_FALSE(it.Valid());
}

// ---------------------------------------------------------------------------
// MemIndex — QinDB's versioned in-memory table
// ---------------------------------------------------------------------------

TEST(MemIndexTest, InsertAndExactLookup) {
  MemIndex index;
  index.Insert("url1", 1, 100, 64, false);
  index.Insert("url1", 2, 200, 0, true);
  index.Insert("url2", 1, 300, 32, false);

  MemEntry* e = index.FindExact("url1", 2);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->address, 200u);
  EXPECT_TRUE(e->dedup);
  EXPECT_EQ(e->value_size, 0u);

  EXPECT_EQ(index.FindExact("url1", 3), nullptr);
  EXPECT_EQ(index.FindExact("url3", 1), nullptr);
  EXPECT_EQ(index.live_count(), 3u);
}

TEST(MemIndexTest, InsertSameVersionUpdatesInPlace) {
  MemIndex index;
  index.Insert("k", 5, 111, 10, false);
  index.Insert("k", 5, 222, 20, false);
  MemEntry* e = index.FindExact("k", 5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->address, 222u);
  EXPECT_EQ(e->value_size, 20u);
  EXPECT_EQ(index.live_count(), 1u);
}

TEST(MemIndexTest, VersionsOfAKeyAreAdjacentNewestFirst) {
  MemIndex index;
  index.Insert("b", 1, 0, 0, false);
  index.Insert("b", 3, 0, 0, false);
  index.Insert("a", 2, 0, 0, false);
  index.Insert("b", 2, 0, 0, false);
  index.Insert("c", 1, 0, 0, false);

  std::vector<std::pair<std::string, uint64_t>> seen;
  for (MemIndex::Iterator it = index.NewIterator(); it.Valid(); it.Next()) {
    seen.emplace_back(it.entry()->user_key().ToString(), it.entry()->version);
  }
  const std::vector<std::pair<std::string, uint64_t>> expected = {
      {"a", 2}, {"b", 3}, {"b", 2}, {"b", 1}, {"c", 1}};
  EXPECT_EQ(seen, expected);
}

TEST(MemIndexTest, FindLatest) {
  MemIndex index;
  index.Insert("k", 1, 0, 0, false);
  index.Insert("k", 7, 0, 0, false);
  index.Insert("k", 4, 0, 0, false);
  MemEntry* e = index.FindLatest("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 7u);
  EXPECT_EQ(index.FindLatest("nope"), nullptr);
}

TEST(MemIndexTest, TracebackSkipsDeduplicatedVersions) {
  MemIndex index;
  index.Insert("k", 1, 10, 100, false);  // Value-bearing.
  index.Insert("k", 2, 20, 0, true);     // Dedup.
  index.Insert("k", 3, 30, 0, true);     // Dedup.
  index.Insert("k", 4, 40, 50, false);   // Value-bearing.

  // From version 4, the newest older value is version 1 (2 and 3 are NULL).
  MemEntry* e = index.TracebackValue("k", 4);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 1u);
  // From version 5 (hypothetical), version 4 itself carries a value.
  e = index.TracebackValue("k", 5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 4u);
  // Nothing below version 1.
  EXPECT_EQ(index.TracebackValue("k", 1), nullptr);
  EXPECT_EQ(index.TracebackValue("k", 0), nullptr);
}

TEST(MemIndexTest, TracebackDoesNotCrossKeys) {
  MemIndex index;
  index.Insert("a", 1, 0, 10, false);
  index.Insert("b", 2, 0, 0, true);
  EXPECT_EQ(index.TracebackValue("b", 2), nullptr);
}

TEST(MemIndexTest, EntriesForKeyNewestFirst) {
  MemIndex index;
  index.Insert("k", 2, 0, 0, false);
  index.Insert("k", 9, 0, 0, false);
  index.Insert("k", 5, 0, 0, false);
  index.Insert("other", 1, 0, 0, false);
  std::vector<MemEntry*> entries = index.EntriesForKey("k");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->version, 9u);
  EXPECT_EQ(entries[1]->version, 5u);
  EXPECT_EQ(entries[2]->version, 2u);
}

TEST(MemIndexTest, PurgeHidesEntry) {
  MemIndex index;
  index.Insert("k", 1, 0, 0, false);
  MemEntry* e = index.Insert("k", 2, 0, 0, false);
  index.Purge(e);
  EXPECT_EQ(index.live_count(), 1u);
  EXPECT_EQ(index.FindExact("k", 2), nullptr);
  MemEntry* latest = index.FindLatest("k");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->version, 1u);
  EXPECT_EQ(index.EntriesForKey("k").size(), 1u);
}

TEST(MemIndexTest, InsertRevivesPurgedEntry) {
  MemIndex index;
  MemEntry* e = index.Insert("k", 1, 10, 5, false);
  index.Purge(e);
  EXPECT_EQ(index.live_count(), 0u);
  index.Insert("k", 1, 20, 6, false);
  MemEntry* revived = index.FindExact("k", 1);
  ASSERT_NE(revived, nullptr);
  EXPECT_EQ(revived->address, 20u);
  EXPECT_EQ(index.live_count(), 1u);
}

TEST(MemIndexTest, IteratorSeek) {
  MemIndex index;
  index.Insert("apple", 1, 0, 0, false);
  index.Insert("banana", 1, 0, 0, false);
  index.Insert("cherry", 1, 0, 0, false);
  MemIndex::Iterator it = index.NewIterator();
  it.Seek("b");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry()->user_key().ToString(), "banana");
  it.Seek("zzz");
  EXPECT_FALSE(it.Valid());
}

TEST(MemIndexTest, CompactIntoDropsGhosts) {
  MemIndex index;
  MemEntry* a = index.Insert("a", 1, 1, 0, false);
  MemEntry* b = index.Insert("b", 1, 2, 0, true);
  b->deleted = true;
  MemEntry* c = index.Insert("c", 1, 3, 0, false);
  index.Purge(a);
  (void)c;

  MemIndex fresh;
  index.CompactInto(&fresh);
  EXPECT_EQ(fresh.live_count(), 2u);
  EXPECT_EQ(fresh.total_count(), 2u);
  EXPECT_EQ(fresh.FindExact("a", 1), nullptr);
  MemEntry* fb = fresh.FindExact("b", 1);
  ASSERT_NE(fb, nullptr);
  EXPECT_TRUE(fb->deleted);
  EXPECT_TRUE(fb->dedup);
}

TEST(MemIndexTest, CompactIntoPreservesAddressesAndSizes) {
  MemIndex index;
  index.Insert("k", 3, 0xdeadbeef, 777, true);
  MemIndex fresh;
  index.CompactInto(&fresh);
  MemEntry* e = fresh.FindExact("k", 3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->address, 0xdeadbeefu);
  EXPECT_EQ(e->value_size, 777u);
  EXPECT_TRUE(e->dedup);
}

TEST(MemIndexTest, TracebackIncludesDeletedValueVersions) {
  // Deleted value-bearing versions still resolve tracebacks (their bytes
  // persist as GC referents).
  MemIndex index;
  MemEntry* value_entry = index.Insert("k", 1, 10, 100, false);
  index.Insert("k", 2, 20, 0, true);
  value_entry->deleted = true;
  MemEntry* target = index.TracebackValue("k", 2);
  ASSERT_NE(target, nullptr);
  EXPECT_EQ(target->version, 1u);
}

TEST(MemIndexTest, MemoryUsageGrowsWithInsertions) {
  MemIndex index;
  const size_t before = index.ApproximateMemoryUsage();
  for (int i = 0; i < 1000; ++i) {
    index.Insert("key" + std::to_string(i), 1, 0, 0, false);
  }
  EXPECT_GT(index.ApproximateMemoryUsage(), before + 1000 * 20);
  EXPECT_EQ(index.live_count(), 1000u);
  EXPECT_EQ(index.total_count(), 1000u);
}

// Property test: random versioned inserts against a reference model.
TEST(MemIndexTest, RandomOpsMatchReferenceModel) {
  MemIndex index;
  std::map<std::pair<std::string, uint64_t>, uint64_t,
           std::greater<>> dummy;  // silence unused-include warnings
  (void)dummy;
  std::map<std::string, std::map<uint64_t, uint64_t>> model;  // key -> v -> addr
  Random rnd(2024);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(200));
    const uint64_t version = rnd.Uniform(8);
    const uint64_t addr = rnd.Next();
    index.Insert(key, version, addr, 0, false);
    model[key][version] = addr;
  }
  for (const auto& [key, versions] : model) {
    for (const auto& [version, addr] : versions) {
      MemEntry* e = index.FindExact(key, version);
      ASSERT_NE(e, nullptr);
      EXPECT_EQ(e->address, addr);
    }
    MemEntry* latest = index.FindLatest(key);
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->version, versions.rbegin()->first);
  }
  // Full iteration is globally sorted and complete.
  size_t n = 0;
  std::string prev_key;
  uint64_t prev_version = 0;
  bool first = true;
  for (MemIndex::Iterator it = index.NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* e = it.entry();
    if (!first) {
      const int c = e->user_key().compare(prev_key);
      EXPECT_TRUE(c > 0 || (c == 0 && e->version < prev_version));
    }
    prev_key = e->user_key().ToString();
    prev_version = e->version;
    first = false;
    ++n;
  }
  size_t model_n = 0;
  for (const auto& [key, versions] : model) model_n += versions.size();
  EXPECT_EQ(n, model_n);
}

}  // namespace
}  // namespace directload
