// Socket-level regression tests for the EAGAIN handling in SendAll and
// RecvSome. The historical bug: RecvSome mapped a post-poll EAGAIN to a
// return of 0 bytes, which every caller treats as clean EOF — so a racing
// reader (or any spurious poll wakeup) looked like the peer hanging up.
// The send path, by contrast, always re-polled. These tests pin the now-
// symmetric behavior: both directions retry EAGAIN against one shared
// deadline.

#include "rpc/socket.h"

#include <fcntl.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace directload::rpc {
namespace {

struct Pair {
  Socket server;  // Accepted end.
  Socket client;  // Connected end.
};

/// A connected loopback TCP pair on an ephemeral port.
Pair MakeConnectedPair() {
  Pair pair;
  Result<Socket> listener = Listen("127.0.0.1", /*port=*/0, /*backlog=*/4);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  Result<uint16_t> port = LocalPort(*listener);
  EXPECT_TRUE(port.ok()) << port.status().ToString();
  Result<Socket> client = ConnectTo("127.0.0.1", *port, /*timeout_ms=*/2000);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  Result<Socket> accepted = AcceptOne(*listener, /*timeout_ms=*/2000);
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  pair.server = std::move(accepted).value();
  pair.client = std::move(client).value();
  return pair;
}

void SetNonBlocking(const Socket& socket) {
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  ASSERT_GE(flags, 0);
  ASSERT_EQ(::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK), 0);
}

void ShrinkSendBuffer(const Socket& socket) {
  // The kernel doubles and floor-clamps this; it still ends up far below
  // the payload sizes used here, forcing many short sends and EAGAINs.
  int tiny = 1;
  ASSERT_EQ(::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof(tiny)),
            0);
}

TEST(SocketSendAll, DeliversEverythingThroughATinySendBuffer) {
  Pair pair = MakeConnectedPair();
  ShrinkSendBuffer(pair.client);
  SetNonBlocking(pair.client);  // send() must hit EAGAIN, not block.

  // Patterned payload so any dropped or reordered range breaks the check.
  std::string payload;
  payload.reserve(1 << 20);
  Random rng(20260807);
  while (payload.size() < (1 << 20)) {
    payload += rng.NextString(64);
  }

  std::string received;
  std::thread reader([&] {
    // Drain slowly in small bites: the sender's buffer stays full, so its
    // EAGAIN/poll path runs over and over.
    char buf[2048];
    while (true) {
      Result<size_t> n =
          pair.server.RecvSome(buf, sizeof(buf), /*timeout_ms=*/5000);
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      if (*n == 0) return;  // Clean EOF after the sender shuts down.
      received.append(buf, *n);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  Status sent = pair.client.SendAll(payload, /*timeout_ms=*/30000);
  EXPECT_TRUE(sent.ok()) << sent.ToString();
  pair.client.ShutdownWrite();
  reader.join();

  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

TEST(SocketSendAll, EnforcesOneOverallDeadline) {
  Pair pair = MakeConnectedPair();
  ShrinkSendBuffer(pair.client);
  SetNonBlocking(pair.client);

  // Nobody reads the server end: the client's buffer fills and stays full,
  // so SendAll must give up when its (single, shared) deadline expires —
  // not restart the clock on every EAGAIN.
  const std::string payload(4 << 20, 'x');
  const auto before = std::chrono::steady_clock::now();
  Status sent = pair.client.SendAll(payload, /*timeout_ms=*/300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_TRUE(sent.IsTimedOut()) << sent.ToString();
  EXPECT_GE(elapsed.count(), 250);
  EXPECT_LT(elapsed.count(), 5000) << "deadline must not restart per EAGAIN";
}

TEST(SocketRecvSome, TimesOutInsteadOfForgingEof) {
  Pair pair = MakeConnectedPair();
  // Connected, nothing sent: RecvSome must report kTimedOut. Returning 0
  // here would be indistinguishable from the peer closing.
  char buf[64];
  Result<size_t> n = pair.server.RecvSome(buf, sizeof(buf), /*timeout_ms=*/150);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsTimedOut()) << n.status().ToString();
}

TEST(SocketRecvSome, RacingReadersNeverSeePhantomEof) {
  // Two readers share one nonblocking fd. poll() can report POLLIN to both;
  // the slower one's recv then hits EAGAIN. The old code translated that to
  // "0 bytes = clean EOF" — a reader would give up while the writer was
  // still mid-stream. The fixed code re-polls, so 0 can only mean the
  // writer really closed.
  Pair pair = MakeConnectedPair();
  SetNonBlocking(pair.server);

  std::atomic<bool> writer_closed{false};
  std::atomic<uint64_t> total_received{0};
  std::atomic<int> phantom_eofs{0};

  auto reader_fn = [&] {
    char buf[1024];
    while (true) {
      Result<size_t> n =
          pair.server.RecvSome(buf, sizeof(buf), /*timeout_ms=*/5000);
      if (!n.ok()) {
        // kTimedOut after the writer closed means the other reader consumed
        // the EOF; either way this reader is done.
        return;
      }
      if (*n == 0) {
        if (!writer_closed.load()) phantom_eofs.fetch_add(1);
        return;
      }
      total_received.fetch_add(*n);
    }
  };
  std::thread reader_a(reader_fn);
  std::thread reader_b(reader_fn);

  const size_t kChunks = 512;
  const std::string chunk(257, 'z');
  for (size_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(pair.client.SendAll(chunk, /*timeout_ms=*/5000).ok());
    if (i % 16 == 0) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  writer_closed.store(true);
  pair.client.ShutdownWrite();
  reader_a.join();
  reader_b.join();

  EXPECT_EQ(phantom_eofs.load(), 0)
      << "RecvSome returned 0 while the writer was still open";
  EXPECT_EQ(total_received.load(), kChunks * chunk.size());
}

}  // namespace
}  // namespace directload::rpc
