// Tests for the debug lock-rank checker (common/lock_rank.h) and the
// annotated mutex wrappers (common/thread_annotations.h).
//
// The death tests only run where the checker is compiled in — Debug builds
// and -DDIRECTLOAD_LOCK_RANK=ON builds. In plain NDEBUG builds they skip,
// and instead we assert the wrappers carry no extra state (the checker must
// compile to nothing on the lock fast path).

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace directload {
namespace {

#if !DIRECTLOAD_LOCK_RANK_CHECKS
// With the checker compiled out the wrappers must be layout-identical to
// the raw std types: no rank, no name, no per-lock overhead.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Mutex must carry no extra state in NDEBUG builds");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "SharedMutex must carry no extra state in NDEBUG builds");
#endif

TEST(LockRankTest, OrderedAcquisitionSucceeds) {
  // The full documented chain, in rank order, nested like a mutator's
  // deepest path (engine write lock -> AOF -> reader creation -> env).
  Mutex write(LockRank::kQinDbWrite, "qindb-write");
  SharedMutex aof(LockRank::kAofManager, "aof-mu");
  Mutex readers(LockRank::kAofReaders, "aof-readers");
  Mutex env(LockRank::kSsdEnv, "ssd-env");
  Mutex pin(LockRank::kQinDbPin, "qindb-pin");
  {
    MutexLock l1(&write);
    WriterLock l2(&aof);
    MutexLock l3(&readers);
    MutexLock l4(&env);
    MutexLock l5(&pin);
  }
  // Re-acquirable after release, and a fresh thread starts with an empty
  // held stack.
  std::thread t([&] { MutexLock lock(&write); });
  t.join();
  MutexLock again(&write);
}

TEST(LockRankTest, SharedThenHigherExclusiveSucceeds) {
  SharedMutex aof(LockRank::kAofManager, "aof-mu");
  Mutex readers(LockRank::kAofReaders, "aof-readers");
  ReaderLock shared(&aof);
  MutexLock leaf(&readers);  // ReaderFor's pattern: readers_mu_ under shared mu_.
}

TEST(LockRankTest, SequentialReleaseThenLowerRankSucceeds) {
  // Taking a high rank, releasing it, then a lower rank is legal — the
  // checker constrains nesting, not program order. (QinDb::Get pins the
  // index under pin_mu_, releases it, then reads under the AOF lock.)
  Mutex pin(LockRank::kQinDbPin, "qindb-pin");
  SharedMutex aof(LockRank::kAofManager, "aof-mu");
  { MutexLock l(&pin); }
  ReaderLock r(&aof);
}

TEST(LockRankViolationDeathTest, InvertedAcquisitionAborts) {
#if DIRECTLOAD_LOCK_RANK_CHECKS
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // AOF lock first, then the engine write lock: the inverse of the
  // documented order. The abort message must name both locks.
  EXPECT_DEATH(
      {
        SharedMutex aof(LockRank::kAofManager, "aof-mu");
        Mutex write(LockRank::kQinDbWrite, "qindb-write");
        WriterLock l1(&aof);
        MutexLock l2(&write);
      },
      "acquiring \"qindb-write\" \\(rank 10\\) while holding \"aof-mu\" "
      "\\(rank 20\\) inverts the documented order");
#else
  GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
#endif
}

TEST(LockRankViolationDeathTest, RecursiveAcquisitionAborts) {
#if DIRECTLOAD_LOCK_RANK_CHECKS
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex env(LockRank::kSsdEnv, "ssd-env(ftl)");
        MutexLock l1(&env);
        MutexLock l2(&env);  // Self-deadlock on a plain mutex.
      },
      "recursive acquisition of \"ssd-env\\(ftl\\)\" \\(rank 40\\).*"
      "already holds \"ssd-env\\(ftl\\)\"");
#else
  GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
#endif
}

TEST(LockRankViolationDeathTest, SharedReacquisitionAborts) {
#if DIRECTLOAD_LOCK_RANK_CHECKS
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Shared-after-shared on the same lock is flagged too: a writer queued
  // between the two shared acquisitions deadlocks both.
  EXPECT_DEATH(
      {
        SharedMutex aof(LockRank::kAofManager, "aof-mu");
        ReaderLock r1(&aof);
        ReaderLock r2(&aof);
      },
      "recursive acquisition of \"aof-mu\" \\(rank 20\\)");
#else
  GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
#endif
}

TEST(LockRankViolationDeathTest, SameRankDistinctLockAborts) {
#if DIRECTLOAD_LOCK_RANK_CHECKS
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two locks of equal rank (e.g. two engines' write locks) may not nest:
  // with no defined order between them, the cross pattern deadlocks.
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kQinDbWrite, "qindb-write[a]");
        Mutex b(LockRank::kQinDbWrite, "qindb-write[b]");
        MutexLock l1(&a);
        MutexLock l2(&b);
      },
      "\"qindb-write\\[b\\]\" \\(rank 10\\) while holding "
      "\"qindb-write\\[a\\]\" \\(rank 10\\)");
#else
  GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
#endif
}

}  // namespace
}  // namespace directload
