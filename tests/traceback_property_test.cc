// Model-based property test for deduplicated traceback chains (Figure 2):
// random chains of value/NULL versions interleaved with DELs, whole-version
// drops, and forced GC. Invariants checked against the model after every
// collection and at the end: Get(k, v) returns exactly what the model's
// traceback says, GC never reclaims a record still referenced by a live
// deduplicated version, and the final state scrubs clean.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::qindb {
namespace {

constexpr int kSeeds = 10;
constexpr int kOpsPerSeed = 400;
constexpr int kKeys = 12;
constexpr size_t kValueBytes = 300;

ssd::Geometry PropertyGeometry() {
  ssd::Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 2048;  // 64 MiB device.
  return g;
}

std::string KeyOf(int slot) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "doc%02d", slot);
  return std::string(buf);
}

struct ModelVersion {
  std::string value;
  bool dedup = false;
  bool deleted = false;
};
using VersionMap = std::map<uint64_t, ModelVersion>;
using Model = std::map<std::string, VersionMap>;

const std::string* ExpectedValue(const Model& model, const std::string& key,
                                 uint64_t version, bool* found) {
  *found = false;
  auto kit = model.find(key);
  if (kit == model.end()) return nullptr;
  auto vit = kit->second.find(version);
  if (vit == kit->second.end() || vit->second.deleted) return nullptr;
  *found = true;
  if (!vit->second.dedup) return &vit->second.value;
  for (auto rit = std::make_reverse_iterator(vit);
       rit != kit->second.rend(); ++rit) {
    if (!rit->second.dedup) return &rit->second.value;
  }
  *found = false;
  return nullptr;
}

// A dedup PUT at the next version of `key` is safe iff its traceback target
// is guaranteed unreclaimed: the newest non-dedup version below must exist
// and either be live itself or be pinned as a referent by a live dedup
// version in the chain above it. (A fully dead chain may already have been
// collected, so stacking a new dedup on it could never resolve.)
bool DedupPutSafe(const VersionMap& versions) {
  if (versions.empty()) return false;
  for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
    if (!rit->second.dedup) {
      return !rit->second.deleted;  // The target itself must be reachable...
    }
    if (!rit->second.deleted) return true;  // ...or pinned by a live dedup.
  }
  return false;  // No value-bearing version at all.
}

void VerifyAgainstModel(QinDb* db, const Model& model, const char* when) {
  for (const auto& [key, versions] : model) {
    for (const auto& [version, state] : versions) {
      bool expect_found = false;
      const std::string* expected =
          ExpectedValue(model, key, version, &expect_found);
      Result<std::string> got = db->Get(key, version);
      if (expect_found) {
        ASSERT_TRUE(got.ok()) << when << ": " << key << "/" << version
                              << " " << got.status().ToString();
        EXPECT_EQ(*got, *expected) << when << ": " << key << "/" << version;
      } else {
        EXPECT_TRUE(got.status().IsNotFound())
            << when << ": " << key << "/" << version << " "
            << got.status().ToString();
      }
    }
  }
}

TEST(TracebackPropertyTest, RandomChainsMatchModelUnderGc) {
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rnd(static_cast<uint64_t>(seed) * 104729);

    SimClock clock;
    auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                              PropertyGeometry(), ssd::LatencyModel(), &clock);
    QinDbOptions options;
    options.num_shards = 1;
    options.aof.segment_bytes = 4 << 10;  // Small segments: frequent victims.
    options.auto_gc = false;              // GC only when the test says so.
    auto opened = QinDb::Open(env.get(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<QinDb> db = std::move(opened).value();

    Model model;
    uint64_t max_version = 0;

    for (int op = 0; op < kOpsPerSeed; ++op) {
      const std::string key = KeyOf(static_cast<int>(rnd.Uniform(kKeys)));
      VersionMap& versions = model[key];
      const double choice = rnd.NextDouble();

      if (choice < 0.10) {
        ASSERT_TRUE(db->ForceGc().ok());
        // The property: no collection may have reclaimed a record a live
        // deduplicated version still resolves through.
        VerifyAgainstModel(db.get(), model, "after ForceGc");
      } else if (choice < 0.15 && max_version > 0) {
        const uint64_t v = rnd.UniformRange(1, max_version);
        uint64_t expected_flagged = 0;
        for (auto& [k, vs] : model) {
          auto it = vs.find(v);
          if (it != vs.end() && !it->second.deleted) {
            it->second.deleted = true;
            ++expected_flagged;
          }
        }
        Result<uint64_t> flagged = db->DropVersion(v);
        ASSERT_TRUE(flagged.ok());
        EXPECT_EQ(*flagged, expected_flagged) << "DropVersion(" << v << ")";
      } else if (choice < 0.30 && !versions.empty()) {
        std::vector<uint64_t> live;
        for (const auto& [v, state] : versions) {
          if (!state.deleted) live.push_back(v);
        }
        if (!live.empty()) {
          const uint64_t victim = live[rnd.Uniform(live.size())];
          ASSERT_TRUE(db->Del(key, victim).ok());
          versions[victim].deleted = true;
        }
      } else if (choice < 0.60 && DedupPutSafe(versions)) {
        const uint64_t v = versions.rbegin()->first + 1;
        ASSERT_TRUE(db->Put(key, v, Slice(), /*dedup=*/true).ok());
        versions[v] = ModelVersion{std::string(), true, false};
        if (v > max_version) max_version = v;
      } else {
        const uint64_t v =
            versions.empty() ? 1 : versions.rbegin()->first + 1;
        const std::string value = rnd.NextString(kValueBytes);
        ASSERT_TRUE(db->Put(key, v, value).ok());
        versions[v] = ModelVersion{value, false, false};
        if (v > max_version) max_version = v;
      }

      // Spot-check the touched key's newest version every op.
      if (!versions.empty()) {
        const uint64_t newest = versions.rbegin()->first;
        bool expect_found = false;
        const std::string* expected =
            ExpectedValue(model, key, newest, &expect_found);
        Result<std::string> got = db->Get(key, newest);
        if (expect_found) {
          ASSERT_TRUE(got.ok()) << key << "/" << newest << " "
                                << got.status().ToString();
          EXPECT_EQ(*got, *expected);
        } else {
          EXPECT_TRUE(got.status().IsNotFound());
        }
      }
    }

    ASSERT_TRUE(db->ForceGc().ok());
    VerifyAgainstModel(db.get(), model, "final");
    Result<QinDb::ScrubReport> report = db->Scrub();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean())
        << report->damaged_entries << " damaged, "
        << report->unresolvable_dedups << " unresolvable dedups of "
        << report->entries_checked;
  }
}

}  // namespace
}  // namespace directload::qindb
