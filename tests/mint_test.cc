#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/random.h"
#include "mint/cluster.h"

namespace directload::mint {
namespace {

MintOptions SmallCluster() {
  MintOptions o;
  o.num_groups = 2;
  o.nodes_per_group = 3;
  o.replicas = 3;
  o.node_geometry.page_size = 4096;
  o.node_geometry.pages_per_block = 8;
  o.node_geometry.num_blocks = 2048;  // 64 MiB per node.
  o.engine.aof.segment_bytes = 128 << 10;
  return o;
}

class MintTest : public ::testing::Test {
 protected:
  MintTest() : cluster_(SmallCluster()) {
    EXPECT_TRUE(cluster_.Start().ok());
  }
  MintCluster cluster_;
};

TEST_F(MintTest, DispatchIsByGroupAndDeterministic) {
  EXPECT_EQ(cluster_.GroupOf("some-key"), cluster_.GroupOf("some-key"));
  // Replicas live inside the key's group.
  for (const char* key : {"a", "b", "c", "d", "e"}) {
    const int group = cluster_.GroupOf(key);
    const std::vector<int> replicas = cluster_.ReplicasOf(key);
    EXPECT_EQ(replicas.size(), 3u);
    std::set<int> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    for (int id : replicas) {
      EXPECT_EQ(id / 3, group);  // 3 nodes per group, ids are contiguous.
    }
  }
}

TEST_F(MintTest, KeysSpreadAcrossGroups) {
  std::set<int> groups;
  for (int i = 0; i < 100; ++i) {
    groups.insert(cluster_.GroupOf("key" + std::to_string(i)));
  }
  EXPECT_EQ(groups.size(), 2u);
}

TEST_F(MintTest, PutReplicatesToAllReplicas) {
  ASSERT_TRUE(cluster_.Put("key", 1, "value").ok());
  for (int id : cluster_.ReplicasOf("key")) {
    Result<std::string> got = cluster_.node(id)->db()->Get("key", 1);
    ASSERT_TRUE(got.ok()) << "node " << id;
    EXPECT_EQ(*got, "value");
  }
}

TEST_F(MintTest, GetReturnsFastestReplica) {
  ASSERT_TRUE(cluster_.Put("key", 1, std::string(5000, 'v')).ok());
  Result<MintCluster::ReadResult> got = cluster_.Get("key", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, std::string(5000, 'v'));
  EXPECT_GT(got->latency_micros, 0.0);
  EXPECT_GE(got->served_by, 0);
}

TEST_F(MintTest, GetLatestAndVersioning) {
  ASSERT_TRUE(cluster_.Put("key", 1, "v1").ok());
  ASSERT_TRUE(cluster_.Put("key", 2, "v2").ok());
  Result<MintCluster::ReadResult> got = cluster_.GetLatest("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v2");
  ASSERT_TRUE(cluster_.Del("key", 2).ok());
  got = cluster_.GetLatest("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v1");
}

TEST_F(MintTest, DedupPairsResolveAcrossVersions) {
  ASSERT_TRUE(cluster_.Put("key", 1, "stable-value").ok());
  ASSERT_TRUE(cluster_.Put("key", 2, Slice(), /*dedup=*/true).ok());
  Result<MintCluster::ReadResult> got = cluster_.Get("key", 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "stable-value");
}

TEST_F(MintTest, DropVersionPrunesEverywhere) {
  for (int i = 0; i < 20; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(cluster_.Put(key, 1, "old").ok());
    ASSERT_TRUE(cluster_.Put(key, 2, "new").ok());
  }
  ASSERT_TRUE(cluster_.DropVersion(1).ok());
  for (int i = 0; i < 20; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_TRUE(cluster_.Get(key, 1).status().IsNotFound()) << key;
    ASSERT_TRUE(cluster_.Get(key, 2).ok());
  }
}

TEST_F(MintTest, ReadsSurviveNodeFailure) {
  Random rnd(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        cluster_.Put("key" + std::to_string(i), 1, rnd.NextString(500)).ok());
  }
  // Kill one node; every key still answers from the surviving replicas.
  ASSERT_TRUE(cluster_.FailNode(0).ok());
  int served_by_failed = 0;
  for (int i = 0; i < 50; ++i) {
    Result<MintCluster::ReadResult> got =
        cluster_.Get("key" + std::to_string(i), 1);
    ASSERT_TRUE(got.ok()) << i;
    if (got->served_by == 0) ++served_by_failed;
  }
  EXPECT_EQ(served_by_failed, 0);
}

TEST_F(MintTest, RecoveryRestoresNodeAndReportsTime) {
  Random rnd(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        cluster_.Put("key" + std::to_string(i), 1, rnd.NextString(2000)).ok());
  }
  ASSERT_TRUE(cluster_.FailNode(1).ok());
  Result<double> recovery_seconds = cluster_.RecoverNode(1);
  ASSERT_TRUE(recovery_seconds.ok()) << recovery_seconds.status().ToString();
  // Recovery scans the AOFs: it takes real (simulated) time.
  EXPECT_GT(*recovery_seconds, 0.0);
  EXPECT_TRUE(cluster_.node(1)->up());
  // The recovered node serves its share of reads again.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster_.Get("key" + std::to_string(i), 1).ok());
  }
}

TEST_F(MintTest, WritesSkipDownNodesAndClusterStaysAvailable) {
  ASSERT_TRUE(cluster_.FailNode(0).ok());
  ASSERT_TRUE(cluster_.FailNode(3).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster_.Put("key" + std::to_string(i), 1, "v").ok());
    ASSERT_TRUE(cluster_.Get("key" + std::to_string(i), 1).ok());
  }
}

TEST_F(MintTest, AddNodeWithoutRedistribution) {
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster_.Put("key" + std::to_string(i), 1, "before").ok());
  }
  Result<int> new_node = cluster_.AddNode(0);
  ASSERT_TRUE(new_node.ok());
  EXPECT_EQ(cluster_.num_nodes(), 7);
  // Nothing moved: the new node holds no data.
  EXPECT_EQ(cluster_.node(*new_node)->db()->memtable().live_count(), 0u);
  // All previously stored pairs remain readable (reads query the group).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster_.Get("key" + std::to_string(i), 1).ok()) << i;
  }
  // New writes may now land on the new node.
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(cluster_.Put("key" + std::to_string(i), 2, "after").ok());
  }
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(cluster_.Get("key" + std::to_string(i), 2).ok());
  }
}

TEST_F(MintTest, ReplicationTriplesIngestedBytes) {
  const std::string value(1000, 'v');
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster_.Put("key" + std::to_string(i), 1, value).ok());
  }
  const uint64_t user_bytes = 30 * (4 + std::to_string(0).size() + 1000);
  // Roughly 3x the single-copy volume (key sizes vary slightly).
  EXPECT_NEAR(static_cast<double>(cluster_.TotalUserBytesIngested()),
              3.0 * static_cast<double>(user_bytes), 0.1 * 3 * user_bytes);
}

}  // namespace
}  // namespace directload::mint
