// Unit tests for the failpoint framework itself: spec grammar, trigger
// semantics, payload actions, registry behavior, and thread safety of the
// arm/evaluate race. The framework classes are compiled in every build
// flavor (only the *call sites* are gated on DIRECTLOAD_FAILPOINTS), so
// this test runs everywhere, including the TSan job.

#include "common/failpoint.h"
#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace directload::failpoint {
namespace {

// ---------------------------------------------------------------------------
// ParseSpec grammar
// ---------------------------------------------------------------------------

TEST(FailPointSpec, BareReturnDefaultsToIoError) {
  Spec spec;
  ASSERT_TRUE(ParseSpec("return", &spec).ok());
  EXPECT_EQ(spec.action, Action::kReturnError);
  EXPECT_EQ(spec.error_code, StatusCode::kIOError);
  EXPECT_DOUBLE_EQ(spec.probability, 1.0);
  EXPECT_EQ(spec.every, 0u);
  EXPECT_EQ(spec.max_hits, -1);
}

TEST(FailPointSpec, ReturnWithEveryNamedCode) {
  const struct {
    const char* name;
    StatusCode code;
  } kCases[] = {
      {"notfound", StatusCode::kNotFound},
      {"corruption", StatusCode::kCorruption},
      {"invalid", StatusCode::kInvalidArgument},
      {"io", StatusCode::kIOError},
      {"nospace", StatusCode::kNoSpace},
      {"busy", StatusCode::kBusy},
      {"unavailable", StatusCode::kUnavailable},
      {"timedout", StatusCode::kTimedOut},
      {"aborted", StatusCode::kAborted},
      {"dedup", StatusCode::kDeduplicated},
      {"internal", StatusCode::kInternal},
      {"protocol", StatusCode::kProtocol},
  };
  for (const auto& c : kCases) {
    Spec spec;
    const std::string text = std::string("return(") + c.name + ")";
    ASSERT_TRUE(ParseSpec(text, &spec).ok()) << text;
    EXPECT_EQ(spec.error_code, c.code) << text;
  }
}

TEST(FailPointSpec, TriggersComposeLeftToRight) {
  Spec spec;
  ASSERT_TRUE(ParseSpec("12.5%every3:2*return(busy)", &spec).ok());
  EXPECT_DOUBLE_EQ(spec.probability, 0.125);
  EXPECT_EQ(spec.every, 3u);
  EXPECT_EQ(spec.max_hits, 2);
  EXPECT_EQ(spec.action, Action::kReturnError);
  EXPECT_EQ(spec.error_code, StatusCode::kBusy);
}

TEST(FailPointSpec, DelayShortCorruptAbort) {
  Spec spec;
  ASSERT_TRUE(ParseSpec("delay(25)", &spec).ok());
  EXPECT_EQ(spec.action, Action::kDelay);
  EXPECT_EQ(spec.delay_ms, 25);

  ASSERT_TRUE(ParseSpec("short(7)", &spec).ok());
  EXPECT_EQ(spec.action, Action::kShortIo);
  EXPECT_EQ(spec.short_io_bytes, 7u);

  ASSERT_TRUE(ParseSpec("corrupt", &spec).ok());
  EXPECT_EQ(spec.action, Action::kCorrupt);

  ASSERT_TRUE(ParseSpec("1*abort", &spec).ok());
  EXPECT_EQ(spec.action, Action::kAbort);
  EXPECT_EQ(spec.max_hits, 1);
}

TEST(FailPointSpec, MalformedSpecsAreRejected) {
  const char* kBad[] = {
      "",                 // No action.
      "explode",          // Unknown action.
      "return(nope)",     // Unknown status code.
      "150%return",       // Probability out of range.
      "-5%return",        // Negative probability.
      "x%return",         // Non-numeric probability.
      "every0:return",    // every needs N >= 1.
      "everyX:return",    // Non-numeric N.
      "0*return",         // Count must be >= 1.
      "delay",            // delay requires (ms).
      "delay(abc)",       // Non-numeric ms.
      "short",            // short requires (bytes).
      "abort(now)",       // abort takes no argument.
      "corrupt(1)",       // corrupt takes no argument.
      "return(io",        // Unbalanced parenthesis.
  };
  for (const char* text : kBad) {
    Spec spec;
    EXPECT_FALSE(ParseSpec(text, &spec).ok()) << "\"" << text << "\"";
  }
}

// ---------------------------------------------------------------------------
// Trigger semantics
// ---------------------------------------------------------------------------

Spec MustParse(std::string_view text) {
  Spec spec;
  Status s = ParseSpec(text, &spec);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return spec;
}

TEST(FailPointTrigger, DisarmedIsFreeAndSilent) {
  FailPoint point("test_disarmed");
  EXPECT_FALSE(point.armed());
  EXPECT_TRUE(point.MaybeFail().ok());
  EXPECT_EQ(point.evaluations(), 0u);  // Disarmed evals are not counted.
  EXPECT_EQ(point.hits(), 0u);
}

TEST(FailPointTrigger, OneShotFiresOnceThenDisarms) {
  FailPoint point("test_oneshot");
  point.Activate(MustParse("1*return(unavailable)"));
  ASSERT_TRUE(point.armed());

  Status first = point.MaybeFail();
  EXPECT_TRUE(first.IsUnavailable()) << first.ToString();
  EXPECT_NE(first.ToString().find("test_oneshot"), std::string::npos)
      << "injected status should name the failpoint: " << first.ToString();
  EXPECT_FALSE(point.armed());
  EXPECT_TRUE(point.MaybeFail().ok());
  EXPECT_EQ(point.hits(), 1u);
}

TEST(FailPointTrigger, EveryNthFiresOnMultiplesOnly) {
  FailPoint point("test_every");
  point.Activate(MustParse("every3:return(io)"));
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    if (!point.MaybeFail().ok()) {
      ++fired;
      EXPECT_EQ(i % 3, 0) << "fired on evaluation " << i;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(point.evaluations(), 9u);
  EXPECT_EQ(point.hits(), 3u);
}

TEST(FailPointTrigger, MaxHitsBudgetIsExact) {
  FailPoint point("test_budget");
  point.Activate(MustParse("4*return(io)"));
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (!point.MaybeFail().ok()) ++fired;
  }
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(point.hits(), 4u);
  EXPECT_FALSE(point.armed());
}

TEST(FailPointTrigger, ProbabilityZeroNeverFiresProbabilityOneAlways) {
  FailPoint never("test_never");
  never.Activate(MustParse("0%return(io)"));
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(never.MaybeFail().ok());
  }
  EXPECT_EQ(never.hits(), 0u);

  FailPoint always("test_always");
  always.Activate(MustParse("100%return(io)"));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(always.MaybeFail().ok());
  }
  EXPECT_EQ(always.hits(), 200u);
}

TEST(FailPointTrigger, ProbabilisticRateIsRoughlyHonored) {
  FailPoint point("test_half");
  Spec spec = MustParse("50%return(io)");
  spec.seed = 42;  // Deterministic stream: the counts below are exact.
  point.Activate(spec);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!point.MaybeFail().ok()) ++fired;
  }
  // A fair coin landing outside [350, 650] over 1000 flips is ~1e-21.
  EXPECT_GT(fired, 350);
  EXPECT_LT(fired, 650);
}

TEST(FailPointTrigger, DelayBlocksForAtLeastTheRequestedTime) {
  FailPoint point("test_delay");
  point.Activate(MustParse("1*delay(30)"));
  const auto before = std::chrono::steady_clock::now();
  EXPECT_TRUE(point.MaybeFail().ok());  // Delay lets the operation proceed.
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_GE(elapsed.count(), 30);
}

TEST(FailPointTrigger, DeactivateStandsDown) {
  FailPoint point("test_deactivate");
  point.Activate(MustParse("return(io)"));
  EXPECT_FALSE(point.MaybeFail().ok());
  point.Deactivate();
  EXPECT_FALSE(point.armed());
  EXPECT_TRUE(point.MaybeFail().ok());
}

// ---------------------------------------------------------------------------
// Payload actions
// ---------------------------------------------------------------------------

TEST(FailPointIo, ShortIoClampsTheTransferAndFails) {
  FailPoint point("test_short");
  point.Activate(MustParse("1*short(3)"));
  std::string payload = "0123456789";
  uint64_t io_bytes = payload.size();
  Status s = point.MaybeFailIo(&payload, &io_bytes);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(io_bytes, 3u);
  EXPECT_EQ(payload, "0123456789");  // short never edits the bytes.
}

TEST(FailPointIo, ShortIoNeverGrowsTheTransfer) {
  FailPoint point("test_short_grow");
  point.Activate(MustParse("1*short(100)"));
  std::string payload = "abc";
  uint64_t io_bytes = payload.size();
  Status s = point.MaybeFailIo(&payload, &io_bytes);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(io_bytes, 3u);  // Already below the clamp: unchanged.
}

TEST(FailPointIo, CorruptFlipsExactlyOneBitAndSucceeds) {
  FailPoint point("test_corrupt");
  point.Activate(MustParse("1*corrupt"));
  const std::string original(64, '\xAA');
  std::string payload = original;
  EXPECT_TRUE(point.MaybeFailIo(&payload, nullptr).ok());
  ASSERT_EQ(payload.size(), original.size());
  int bits_flipped = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(payload[i]) ^
                         static_cast<unsigned char>(original[i]);
    while (diff != 0) {
      bits_flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_flipped, 1);
}

TEST(FailPointIo, NullPayloadIsTolerated) {
  FailPoint corrupt("test_corrupt_null");
  corrupt.Activate(MustParse("corrupt"));
  EXPECT_TRUE(corrupt.MaybeFailIo(nullptr, nullptr).ok());

  FailPoint short_io("test_short_null");
  short_io.Activate(MustParse("short(1)"));
  EXPECT_TRUE(short_io.MaybeFailIo(nullptr, nullptr).IsIOError());
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Registry::Instance().DeactivateAll();
    Registry::Instance().ResetCountersForTesting();
    Registry::Instance().SetSeed(1);
  }
};

TEST_F(RegistryTest, RegisterIsIdempotentAndFindSeesIt) {
  Registry& reg = Registry::Instance();
  FailPoint* a = reg.Register("reg_test_point");
  FailPoint* b = reg.Register("reg_test_point");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.Find("reg_test_point"), a);
  EXPECT_EQ(reg.Find("reg_test_point_never_made"), nullptr);
}

TEST_F(RegistryTest, ListIsSortedByName) {
  Registry& reg = Registry::Instance();
  reg.Register("reg_sort_b");
  reg.Register("reg_sort_a");
  std::vector<FailPoint*> all = reg.List();
  ASSERT_GE(all.size(), 2u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name(), all[i]->name());
  }
}

TEST_F(RegistryTest, ActivateByTextArmsAndDeactivateDisarms) {
  Registry& reg = Registry::Instance();
  ASSERT_TRUE(reg.Activate("reg_arm_test", "return(busy)").ok());
  FailPoint* point = reg.Find("reg_arm_test");
  ASSERT_NE(point, nullptr);
  EXPECT_TRUE(point->armed());
  EXPECT_TRUE(point->MaybeFail().IsBusy());
  reg.Deactivate("reg_arm_test");
  EXPECT_FALSE(point->armed());
}

TEST_F(RegistryTest, ActivateRejectsMalformedSpecText) {
  EXPECT_FALSE(
      Registry::Instance().Activate("reg_bad_spec", "frobnicate").ok());
}

TEST_F(RegistryTest, ActivateFromStringArmsEveryEntry) {
  Registry& reg = Registry::Instance();
  ASSERT_TRUE(reg.ActivateFromString(
                     "reg_multi_a=return(io);reg_multi_b=1*return(nospace)")
                  .ok());
  ASSERT_NE(reg.Find("reg_multi_a"), nullptr);
  ASSERT_NE(reg.Find("reg_multi_b"), nullptr);
  EXPECT_TRUE(reg.Find("reg_multi_a")->armed());
  EXPECT_TRUE(reg.Find("reg_multi_b")->armed());
  EXPECT_TRUE(reg.Find("reg_multi_b")->MaybeFail().IsNoSpace());
}

TEST_F(RegistryTest, ActivateFromStringRejectsEntriesWithoutName) {
  Registry& reg = Registry::Instance();
  EXPECT_FALSE(reg.ActivateFromString("=return(io)").ok());
  EXPECT_FALSE(reg.ActivateFromString("noequalssign").ok());
  // Empty entries (trailing semicolons) are tolerated.
  EXPECT_TRUE(reg.ActivateFromString("reg_trailing=return(io);;").ok());
}

TEST_F(RegistryTest, CountersAggregateAcrossPoints) {
  Registry& reg = Registry::Instance();
  reg.ResetCountersForTesting();
  ASSERT_TRUE(reg.Activate("reg_count_a", "return(io)").ok());
  ASSERT_TRUE(reg.Activate("reg_count_b", "2*return(io)").ok());
  FailPoint* a = reg.Find("reg_count_a");
  FailPoint* b = reg.Find("reg_count_b");
  DL_DISCARD_STATUS("counting hits, not outcomes", a->MaybeFail());
  DL_DISCARD_STATUS("counting hits, not outcomes", a->MaybeFail());
  DL_DISCARD_STATUS("counting hits, not outcomes", b->MaybeFail());
  EXPECT_GE(reg.DistinctFired(), 2);
  EXPECT_GE(reg.TotalHits(), 3u);
}

TEST_F(RegistryTest, RegistrySeedMakesProbabilisticStreamsReproducible) {
  Registry& reg = Registry::Instance();
  auto run_schedule = [&](uint64_t seed) {
    reg.SetSeed(seed);
    EXPECT_TRUE(reg.Activate("reg_seeded", "30%return(io)").ok());
    FailPoint* point = reg.Find("reg_seeded");
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += point->MaybeFail().ok() ? '.' : 'X';
    }
    reg.Deactivate("reg_seeded");
    return pattern;
  };
  const std::string first = run_schedule(7);
  EXPECT_EQ(first, run_schedule(7))
      << "same seed must replay the same firings";
  EXPECT_NE(first, run_schedule(8)) << "different seed should diverge";
}

// ---------------------------------------------------------------------------
// Concurrency: arm/disarm races a hot evaluation loop. Run under TSan in CI.
// ---------------------------------------------------------------------------

TEST(FailPointConcurrency, ArmDisarmRacesEvaluationsSafely) {
  FailPoint point("test_concurrent");
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed_failures{0};

  std::vector<std::thread> evaluators;
  for (int t = 0; t < 4; ++t) {
    evaluators.emplace_back([&] {
      std::string payload = "payload-bytes";
      while (!stop.load(std::memory_order_relaxed)) {
        if (!point.MaybeFail().ok()) {
          observed_failures.fetch_add(1, std::memory_order_relaxed);
        }
        uint64_t io_bytes = payload.size();
        DL_DISCARD_STATUS("hammering the trigger from many threads",
                          point.MaybeFailIo(&payload, &io_bytes));
      }
    });
  }

  std::thread toggler([&] {
    Spec on;
    ASSERT_TRUE(ParseSpec("50%return(io)", &on).ok());
    on.seed = 99;
    for (int i = 0; i < 200; ++i) {
      point.Activate(on);
      std::this_thread::yield();
      point.Deactivate();
    }
  });

  toggler.join();
  stop.store(true);
  for (std::thread& t : evaluators) t.join();

  // No crash, no TSan report; and the toggling windows were wide enough for
  // at least one injected failure to land.
  EXPECT_GT(observed_failures.load(), 0u);
}

TEST(FailPointConcurrency, BudgetIsExactUnderContention) {
  FailPoint point("test_concurrent_budget");
  Spec spec;
  ASSERT_TRUE(ParseSpec("64*return(io)", &spec).ok());
  point.Activate(spec);

  std::atomic<uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        if (!point.MaybeFail().ok()) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), 64u);
  EXPECT_EQ(point.hits(), 64u);
  EXPECT_FALSE(point.armed());
}

}  // namespace
}  // namespace directload::failpoint
