// Regression tests for SsdEnv's locking refactor: the env used to hold one
// std::recursive_mutex and re-enter itself (rename -> delete, close -> sync,
// file write -> allocator); it now composes through *Locked internals under
// a single plain ranked mutex. These tests drive every formerly re-entrant
// path — under the lock-rank checker (Debug / DIRECTLOAD_LOCK_RANK=ON
// builds) any accidental re-acquisition aborts the process.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "ssd/env.h"
#include "ssd/geometry.h"

namespace directload::ssd {
namespace {

Geometry SmallGeometry() {
  Geometry g;
  g.page_size = 4096;
  g.pages_per_block = 8;
  g.num_blocks = 64;
  g.overprovision = 0.25;
  return g;
}

class EnvLockingTest : public ::testing::TestWithParam<InterfaceMode> {
 protected:
  void SetUp() override {
    env_ = NewSsdEnv(GetParam(), SmallGeometry(), LatencyModel(), &clock_);
  }

  Status WriteFile(const std::string& name, const std::string& data) {
    Result<std::unique_ptr<WritableFile>> file = env_->NewWritableFile(name);
    if (!file.ok()) return file.status();
    Status s = (*file)->Append(data);
    if (!s.ok()) return s;
    return (*file)->Close();
  }

  Result<std::string> ReadWholeFile(const std::string& name) {
    Result<std::unique_ptr<RandomAccessFile>> file =
        env_->NewRandomAccessFile(name);
    if (!file.ok()) return file.status();
    std::string out;
    Status s = (*file)->Read(0, (*file)->Size(), &out);
    if (!s.ok()) return s;
    return out;
  }

  SimClock clock_;
  std::unique_ptr<SsdEnv> env_;
};

// RenameFile deletes an existing destination internally (the old recursive
// RenameFile -> DeleteFile edge).
TEST_P(EnvLockingTest, RenameOverExistingTarget) {
  ASSERT_TRUE(WriteFile("src", std::string(4096, 'a')).ok());
  ASSERT_TRUE(WriteFile("dst", std::string(8192, 'b')).ok());
  ASSERT_TRUE(env_->RenameFile("src", "dst").ok());
  EXPECT_FALSE(env_->FileExists("src"));
  Result<std::string> got = ReadWholeFile("dst");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::string(4096, 'a'));
}

// Close persists the tail internally (the old recursive Close -> Sync edge),
// including the multi-page flush loop of a large unsynced append.
TEST_P(EnvLockingTest, CloseFlushesMultiPageTail) {
  const std::string payload(3 * 4096 + 100, 'q');  // Spans pages + sub-page tail.
  Result<std::unique_ptr<WritableFile>> file = env_->NewWritableFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(payload).ok());
  ASSERT_TRUE((*file)->Close().ok());
  Result<std::string> got = ReadWholeFile("f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->substr(0, payload.size()), payload);
}

// Appends large enough to cross block boundaries exercise the file ->
// allocator edge (page/block allocation happens under the env lock while a
// file method holds it).
TEST_P(EnvLockingTest, AppendAcrossBlockBoundary) {
  const Geometry g = SmallGeometry();
  const std::string payload(2 * g.pages_per_block * g.page_size, 'z');
  ASSERT_TRUE(WriteFile("big", payload).ok());
  Result<std::string> got = ReadWholeFile("big");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->substr(0, payload.size()), payload);
}

// Deleting (and thus trimming/erasing) one file while another file's writer
// is mid-append: the GC-erase-during-write shape.
TEST_P(EnvLockingTest, DeleteWhileOtherWriterOpen) {
  ASSERT_TRUE(WriteFile("victim", std::string(8192, 'v')).ok());
  Result<std::unique_ptr<WritableFile>> writer = env_->NewWritableFile("live");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(std::string(4096, 'l')).ok());
  ASSERT_TRUE(env_->DeleteFile("victim").ok());
  ASSERT_TRUE((*writer)->Append(std::string(4096, 'm')).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_FALSE(env_->FileExists("victim"));
  Result<std::string> got = ReadWholeFile("live");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->substr(0, 4096), std::string(4096, 'l'));
  EXPECT_EQ(got->substr(4096, 4096), std::string(4096, 'm'));
}

// Positional reads of the persisted prefix while the writer is still open
// (the latency-model read path, which also consults env state).
TEST_P(EnvLockingTest, ReadPersistedPrefixDuringWrite) {
  Result<std::unique_ptr<WritableFile>> writer = env_->NewWritableFile("f");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(std::string(4096, 'a')).ok());
  ASSERT_TRUE((*writer)->Append(std::string(4096, 'b')).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  const uint64_t persisted = (*writer)->PersistedSize();
  ASSERT_GE(persisted, 4096u);

  Result<std::unique_ptr<RandomAccessFile>> reader =
      env_->NewRandomAccessFile("f");
  ASSERT_TRUE(reader.ok());
  std::string out;
  ASSERT_TRUE((*reader)->Read(0, 4096, &out).ok());
  EXPECT_EQ(out, std::string(4096, 'a'));

  // Keep writing after the read; the env lock is free between operations.
  ASSERT_TRUE((*writer)->Append(std::string(100, 'c')).ok());
  ASSERT_TRUE((*writer)->Close().ok());
}

// Real threads hammering one env: every operation serializes on the single
// command-queue lock; under TSan and the rank checker this verifies the
// refactor introduced no race and no self-acquisition.
TEST_P(EnvLockingTest, MultithreadedEnvSmoke) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string name =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        Result<std::unique_ptr<WritableFile>> file =
            env_->NewWritableFile(name);
        ASSERT_TRUE(file.ok());
        ASSERT_TRUE((*file)->Append(std::string(4096, 'a' + t)).ok());
        ASSERT_TRUE((*file)->Close().ok());
        if (i % 2 == 0) {
          ASSERT_TRUE(env_->RenameFile(name, name + "_r").ok());
          ASSERT_TRUE(env_->DeleteFile(name + "_r").ok());
        } else {
          std::string out;
          Result<std::unique_ptr<RandomAccessFile>> reader =
              env_->NewRandomAccessFile(name);
          ASSERT_TRUE(reader.ok());
          ASSERT_TRUE((*reader)->Read(0, 4096, &out).ok());
          EXPECT_EQ(out, std::string(4096, 'a' + t));
        }
        env_->TotalFileBytes();  // Accounting read from a racing thread.
        env_->host_bytes_appended();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every odd-iteration file survives.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 1; i < kOpsPerThread; i += 2) {
      EXPECT_TRUE(env_->FileExists("t" + std::to_string(t) + "_" +
                                   std::to_string(i)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothInterfaces, EnvLockingTest,
                         ::testing::Values(InterfaceMode::kPageMappedFtl,
                                           InterfaceMode::kNativeBlock),
                         [](const auto& info) {
                           return info.param == InterfaceMode::kPageMappedFtl
                                      ? std::string("PageMappedFtl")
                                      : std::string("NativeBlock");
                         });

}  // namespace
}  // namespace directload::ssd
