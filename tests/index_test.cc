#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/builders.h"
#include "index/corpus.h"

namespace directload::webindex {
namespace {

CorpusOptions SmallCorpus() {
  CorpusOptions o;
  o.num_docs = 200;
  o.vocab_size = 2000;
  o.terms_per_doc = 20;
  o.abstract_bytes = 2048;
  o.seed = 5;
  return o;
}

TEST(CorpusTest, DocumentsHave20ByteUrls) {
  Corpus corpus(SmallCorpus());
  ASSERT_EQ(corpus.documents().size(), 200u);
  for (const Document& doc : corpus.documents()) {
    EXPECT_EQ(doc.url.size(), 20u);  // Paper Section 4.1: 20-byte keys.
  }
  EXPECT_EQ(corpus.version(), 1u);
}

TEST(CorpusTest, ContentIsDeterministicPerSeed) {
  Corpus corpus(SmallCorpus());
  const Document& doc = corpus.documents()[7];
  EXPECT_EQ(corpus.TermsOf(doc), corpus.TermsOf(doc));
  EXPECT_EQ(corpus.AbstractOf(doc), corpus.AbstractOf(doc));
  const std::vector<uint32_t> terms = corpus.TermsOf(doc);
  EXPECT_EQ(terms.size(), 20u);
  EXPECT_TRUE(std::is_sorted(terms.begin(), terms.end()));
  EXPECT_EQ(std::set<uint32_t>(terms.begin(), terms.end()).size(), 20u);
}

TEST(CorpusTest, AdvanceVersionChangesConfiguredFraction) {
  CorpusOptions options = SmallCorpus();
  options.num_docs = 2000;
  options.change_rate = 0.3;
  Corpus corpus(options);
  std::vector<uint64_t> before;
  for (const Document& doc : corpus.documents()) {
    before.push_back(doc.content_seed);
  }
  EXPECT_EQ(corpus.AdvanceVersion(), 2u);
  uint64_t changed = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    if (corpus.documents()[i].content_seed != before[i]) ++changed;
  }
  EXPECT_EQ(changed, corpus.docs_changed_last_round());
  // ~30% changed => ~70% redundant between versions, the paper's figure.
  EXPECT_NEAR(static_cast<double>(changed) / 2000.0, 0.3, 0.05);
}

TEST(CorpusTest, ExplicitChangeRateOverride) {
  Corpus corpus(SmallCorpus());
  corpus.AdvanceVersionWithChangeRate(0.0);
  EXPECT_EQ(corpus.docs_changed_last_round(), 0u);
  corpus.AdvanceVersionWithChangeRate(1.0);
  EXPECT_EQ(corpus.docs_changed_last_round(), corpus.documents().size());
}

TEST(CorpusTest, TieredAdvanceChangesOnlyVipDocuments) {
  CorpusOptions options = SmallCorpus();
  options.num_docs = 1000;
  options.vip_fraction = 0.3;
  Corpus corpus(options);
  std::vector<uint64_t> before;
  for (const Document& doc : corpus.documents()) {
    before.push_back(doc.content_seed);
  }
  // A VIP-only round: every VIP doc changes, no non-VIP doc does.
  corpus.AdvanceVersionTiered(/*vip=*/1.0, /*nonvip=*/0.0);
  for (size_t i = 0; i < before.size(); ++i) {
    const Document& doc = corpus.documents()[i];
    if (doc.vip) {
      EXPECT_NE(doc.content_seed, before[i]) << i;
    } else {
      EXPECT_EQ(doc.content_seed, before[i]) << i;
    }
  }
}

TEST(CorpusTest, VipFractionRoughlyHonored) {
  CorpusOptions options = SmallCorpus();
  options.num_docs = 2000;
  options.vip_fraction = 0.2;
  Corpus corpus(options);
  uint64_t vip = 0;
  for (const Document& doc : corpus.documents()) vip += doc.vip ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(vip) / 2000.0, 0.2, 0.04);
}

TEST(CorpusTest, UnchangedDocsKeepIdenticalIndexValues) {
  Corpus corpus(SmallCorpus());
  const Document& doc = corpus.documents()[3];
  const std::string before = corpus.AbstractOf(doc);
  corpus.AdvanceVersionWithChangeRate(0.0);
  EXPECT_EQ(corpus.AbstractOf(corpus.documents()[3]), before);
}

TEST(SerializationTest, TermListRoundTrip) {
  const std::vector<uint32_t> terms = {0, 1, 7, 500, 19999};
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DecodeTermList(EncodeTermList(terms), &decoded).ok());
  EXPECT_EQ(decoded, terms);
}

TEST(SerializationTest, UrlListRoundTrip) {
  const std::vector<std::string> urls = {"url:a", "url:b", ""};
  std::vector<std::string> decoded;
  ASSERT_TRUE(DecodeUrlList(EncodeUrlList(urls), &decoded).ok());
  EXPECT_EQ(decoded, urls);
}

TEST(SerializationTest, GarbageRejected) {
  std::vector<uint32_t> terms;
  EXPECT_TRUE(DecodeTermList(Slice("\xff\xff\xff\xff\xff\xff", 6), &terms)
                  .IsCorruption());
}

TEST(BuildersTest, ForwardIndexCoversEveryDocument) {
  Corpus corpus(SmallCorpus());
  IndexDataset forward = BuildForwardIndex(corpus);
  EXPECT_EQ(forward.type, IndexType::kForward);
  EXPECT_EQ(forward.version, 1u);
  ASSERT_EQ(forward.pairs.size(), corpus.documents().size());
  std::vector<uint32_t> terms;
  for (size_t i = 0; i < forward.pairs.size(); ++i) {
    EXPECT_EQ(forward.pairs[i].key, corpus.documents()[i].url);
    ASSERT_TRUE(DecodeTermList(forward.pairs[i].value, &terms).ok());
    EXPECT_EQ(terms, corpus.TermsOf(corpus.documents()[i]));
  }
}

TEST(BuildersTest, SummaryIndexHoldsAbstracts) {
  Corpus corpus(SmallCorpus());
  IndexDataset summary = BuildSummaryIndex(corpus);
  ASSERT_EQ(summary.pairs.size(), corpus.documents().size());
  EXPECT_EQ(summary.pairs[0].value, corpus.AbstractOf(corpus.documents()[0]));
  EXPECT_GT(summary.TotalBytes(), 200u * 1024u);  // ~2 KB abstracts.
}

TEST(BuildersTest, InvertedIndexIsConsistentWithForward) {
  Corpus corpus(SmallCorpus());
  IndexDataset forward = BuildForwardIndex(corpus);
  IndexDataset inverted = BuildInvertedIndex(corpus, forward);
  EXPECT_EQ(inverted.type, IndexType::kInverted);

  // Every (doc, term) posting appears exactly once, and the inverted index
  // contains no spurious postings: total postings match.
  uint64_t forward_postings = 0;
  std::vector<uint32_t> terms;
  for (const KvPair& kv : forward.pairs) {
    ASSERT_TRUE(DecodeTermList(kv.value, &terms).ok());
    forward_postings += terms.size();
  }
  uint64_t inverted_postings = 0;
  std::vector<std::string> urls;
  for (const KvPair& kv : inverted.pairs) {
    ASSERT_TRUE(DecodeUrlList(kv.value, &urls).ok());
    inverted_postings += urls.size();
    EXPECT_TRUE(std::is_sorted(urls.begin(), urls.end()));
  }
  EXPECT_EQ(forward_postings, inverted_postings);

  // Spot-check membership both directions.
  const Document& doc = corpus.documents()[11];
  for (uint32_t term : corpus.TermsOf(doc)) {
    const std::string key = TermKey(term);
    auto it = std::find_if(inverted.pairs.begin(), inverted.pairs.end(),
                           [&](const KvPair& kv) { return kv.key == key; });
    ASSERT_NE(it, inverted.pairs.end()) << key;
    ASSERT_TRUE(DecodeUrlList(it->value, &urls).ok());
    EXPECT_TRUE(std::find(urls.begin(), urls.end(), doc.url) != urls.end());
  }
}

TEST(BuildersTest, TermKeyFormatting) {
  EXPECT_EQ(TermKey(0), "term:00000000");
  EXPECT_EQ(TermKey(12345), "term:00012345");
}

}  // namespace
}  // namespace directload::webindex
