// Cross-module integration tests: the full data path (build -> dedup ->
// slice -> transmit -> store -> query), engine equivalence on identical
// workloads, and failure/recovery behavior across subsystem boundaries.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "bifrost/dedup.h"
#include "bifrost/delivery.h"
#include "bifrost/slicer.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "core/directload.h"
#include "index/builders.h"
#include "index/corpus.h"
#include "lsm/db.h"
#include "mint/cluster.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload {
namespace {

ssd::Geometry NodeGeometry() {
  ssd::Geometry g;
  g.pages_per_block = 8;
  g.num_blocks = 8192;  // 256 MiB.
  return g;
}

// ---------------------------------------------------------------------------
// Build -> dedup -> slice -> unpack -> QinDB: byte-identical round trip.
// ---------------------------------------------------------------------------

TEST(PipelineIntegrationTest, DedupedStreamReconstructsExactValues) {
  webindex::CorpusOptions corpus_options;
  corpus_options.num_docs = 150;
  corpus_options.vocab_size = 1000;
  corpus_options.terms_per_doc = 10;
  corpus_options.abstract_bytes = 2048;
  webindex::Corpus corpus(corpus_options);

  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, NodeGeometry(),
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions db_options;
  db_options.num_shards = 1;
  db_options.aof.segment_bytes = 1 << 20;
  auto db = std::move(qindb::QinDb::Open(env.get(), db_options)).value();

  bifrost::Deduplicator dedup;
  // Ship five versions through the full serialize/deserialize path.
  std::map<uint64_t, std::map<std::string, std::string>> truth;
  for (int round = 0; round < 5; ++round) {
    if (round > 0) corpus.AdvanceVersionWithChangeRate(0.3);
    const uint64_t version = corpus.version();
    webindex::IndexDataset summary = webindex::BuildSummaryIndex(corpus);
    for (const webindex::KvPair& kv : summary.pairs) {
      truth[version][kv.key] = kv.value;
    }
    std::vector<bifrost::ShippedPair> shipped =
        dedup.Process(summary, nullptr);
    std::vector<bifrost::SlicePacket> slices = bifrost::PackSlices(
        shipped, summary.type, version, /*slice_bytes=*/16 << 10);
    for (const bifrost::SlicePacket& slice : slices) {
      std::vector<bifrost::ShippedPair> pairs;
      ASSERT_TRUE(bifrost::UnpackSlice(slice, &pairs).ok());
      for (const bifrost::ShippedPair& pair : pairs) {
        ASSERT_TRUE(
            db->Put(pair.key, version, pair.value, pair.dedup).ok());
      }
    }
  }

  // Every value of every version reconstructs exactly — deduplicated pairs
  // resolve through the traceback to the version that last carried bytes.
  for (const auto& [version, pairs] : truth) {
    for (const auto& [key, value] : pairs) {
      Result<std::string> got = db->Get(key, version);
      ASSERT_TRUE(got.ok()) << key << "@" << version;
      EXPECT_EQ(*got, value) << key << "@" << version;
    }
  }
  // And a meaningful share of the stream really was deduplicated.
  EXPECT_GT(db->stats().dedup_puts, db->stats().puts / 3);
}

// ---------------------------------------------------------------------------
// Engine equivalence: identical workload, identical answers.
// ---------------------------------------------------------------------------

TEST(EngineEquivalenceTest, QinDbAndLsmServeIdenticalData) {
  SimClock q_clock, l_clock;
  auto q_env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, NodeGeometry(),
                         ssd::LatencyModel(), &q_clock);
  auto l_env = NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, NodeGeometry(),
                         ssd::LatencyModel(), &l_clock);
  qindb::QinDbOptions q_options;
  q_options.num_shards = 1;
  q_options.aof.segment_bytes = 512 << 10;
  auto qdb = std::move(qindb::QinDb::Open(q_env.get(), q_options)).value();
  lsm::LsmOptions l_options;
  l_options.write_buffer_bytes = 256 << 10;
  auto ldb = std::move(lsm::LsmDb::Open(l_env.get(), l_options)).value();

  // LSM stores versioned pairs under composite keys.
  auto composite = [](const std::string& key, uint64_t version) {
    std::string out = key;
    for (int shift = 56; shift >= 0; shift -= 8) {
      out.push_back(static_cast<char>((version >> shift) & 0xff));
    }
    return out;
  };

  Random rnd(77);
  std::map<std::pair<std::string, uint64_t>, std::string> model;
  for (int i = 0; i < 1500; ++i) {
    const std::string key = "k" + std::to_string(rnd.Uniform(120));
    const uint64_t version = 1 + rnd.Uniform(4);
    if (rnd.Bernoulli(0.8)) {
      const std::string value = rnd.NextString(100 + rnd.Uniform(2000));
      ASSERT_TRUE(qdb->Put(key, version, value).ok());
      ASSERT_TRUE(ldb->Put(composite(key, version), value).ok());
      model[{key, version}] = value;
    } else {
      Status qs = qdb->Del(key, version);
      Status ls = ldb->Delete(composite(key, version));
      ASSERT_TRUE(ls.ok());
      if (qs.ok()) model.erase({key, version});
      // QinDB returns NotFound for never-written pairs; LSM writes a
      // tombstone unconditionally. Both end at "absent".
      model.erase({key, version});
    }
  }

  for (int i = 0; i < 120; ++i) {
    const std::string key = "k" + std::to_string(i);
    for (uint64_t version = 1; version <= 4; ++version) {
      Result<std::string> q = qdb->Get(key, version);
      Result<std::string> l = ldb->Get(composite(key, version));
      auto it = model.find({key, version});
      if (it == model.end()) {
        EXPECT_TRUE(q.status().IsNotFound()) << key << "@" << version;
        EXPECT_TRUE(l.status().IsNotFound()) << key << "@" << version;
      } else {
        ASSERT_TRUE(q.ok());
        ASSERT_TRUE(l.ok());
        EXPECT_EQ(*q, *l);
        EXPECT_EQ(*q, it->second);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Delivery + Mint: a node crash during ingestion is absorbed.
// ---------------------------------------------------------------------------

TEST(DeliveryIngestIntegrationTest, NodeCrashDuringIngestIsAbsorbed) {
  mint::MintOptions mint_options;
  mint_options.num_groups = 1;
  mint_options.nodes_per_group = 3;
  mint_options.node_geometry = NodeGeometry();
  mint_options.engine.aof.segment_bytes = 1 << 20;
  mint::MintCluster cluster(mint_options);
  ASSERT_TRUE(cluster.Start().ok());

  // Prepare slices.
  std::vector<bifrost::ShippedPair> pairs;
  Random rnd(3);
  for (int i = 0; i < 120; ++i) {
    bifrost::ShippedPair p;
    p.key = "url:" + std::to_string(i);
    p.value = rnd.NextString(1500);
    pairs.push_back(std::move(p));
  }
  std::vector<bifrost::SlicePacket> slices = bifrost::PackSlices(
      pairs, webindex::IndexType::kInverted, 1, /*slice_bytes=*/16 << 10);

  SimClock net_clock;
  bifrost::DeliveryOptions delivery_options;
  delivery_options.backbone_bytes_per_sec = 10e6;
  delivery_options.regional_bytes_per_sec = 40e6;
  delivery_options.interregion_bytes_per_sec = 10e6;
  delivery_options.tick_seconds = 0.05;
  bifrost::DeliveryService delivery(&net_clock, delivery_options);

  size_t arrivals = 0;
  bool crashed = false;
  bifrost::DeliveryReport report = delivery.DeliverVersion(
      {}, slices, [&](int dc, const bifrost::SlicePacket& slice) {
        if (dc != 0) return;  // This test ingests at data center 0 only.
        std::vector<bifrost::ShippedPair> got;
        ASSERT_TRUE(bifrost::UnpackSlice(slice, &got).ok());
        if (!crashed && ++arrivals == 2) {
          // A replica dies mid-version.
          ASSERT_TRUE(cluster.FailNode(0).ok());
          crashed = true;
        }
        for (const bifrost::ShippedPair& pair : got) {
          ASSERT_TRUE(cluster.Put(pair.key, 1, pair.value, pair.dedup).ok());
        }
      });
  ASSERT_TRUE(report.completed);
  ASSERT_TRUE(crashed);

  // Every pair is readable from the surviving replicas.
  for (const bifrost::ShippedPair& pair : pairs) {
    Result<mint::MintCluster::ReadResult> got = cluster.Get(pair.key, 1);
    ASSERT_TRUE(got.ok()) << pair.key;
    EXPECT_EQ(got->value, pair.value);
  }
  // The crashed node recovers from its AOFs and rejoins.
  ASSERT_TRUE(cluster.RecoverNode(0).ok());
  EXPECT_TRUE(cluster.node(0)->up());
}

// ---------------------------------------------------------------------------
// Gray release catches a bad version; rollback restores service.
// ---------------------------------------------------------------------------

core::DirectLoadOptions TinyPipeline() {
  core::DirectLoadOptions o;
  o.corpus.num_docs = 80;
  o.corpus.vocab_size = 600;
  o.corpus.terms_per_doc = 10;
  o.corpus.abstract_bytes = 512;
  o.delivery.backbone_bytes_per_sec = 40e6;
  o.delivery.interregion_bytes_per_sec = 25e6;
  o.delivery.regional_bytes_per_sec = 80e6;
  o.delivery.tick_seconds = 0.1;
  o.slice_bytes = 16 << 10;
  o.mint.num_groups = 1;
  o.mint.nodes_per_group = 3;
  o.mint.node_geometry.pages_per_block = 8;
  o.mint.node_geometry.num_blocks = 4096;
  o.mint.engine.aof.segment_bytes = 256 << 10;
  o.gray_probe_queries = 15;
  return o;
}

TEST(GrayReleaseIntegrationTest, FailedGrayCheckBlocksActivationEverywhere) {
  // An impossible inconsistency budget makes every gray release fail —
  // verifying the gating mechanism: the new version is stored but never
  // activated, and queries keep serving the previous one.
  core::DirectLoadOptions options = TinyPipeline();
  core::DirectLoad dl(options);
  ASSERT_TRUE(dl.Start().ok());
  ASSERT_TRUE(dl.RunUpdateCycle().ok());
  EXPECT_EQ(dl.active_version(0), 1u);

  core::DirectLoadOptions strict = TinyPipeline();
  strict.gray_max_inconsistency = -1.0;  // Unsatisfiable.
  core::DirectLoad strict_dl(strict);
  ASSERT_TRUE(strict_dl.Start().ok());
  Result<core::UpdateReport> first = strict_dl.RunUpdateCycle();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->gray_release_passed);
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    EXPECT_EQ(strict_dl.active_version(dc), 0u);  // Never went live.
  }
  // The data is nevertheless stored (rollforward would be possible).
  mint::MintCluster* gray = strict_dl.data_center(0);
  const webindex::Document& doc = strict_dl.corpus().documents()[0];
  EXPECT_TRUE(gray->Get(doc.url, 1).ok());
  // But queries refuse to serve an inactive version.
  const uint32_t term = strict_dl.corpus().TermsOf(doc)[0];
  EXPECT_TRUE(strict_dl.Query(0, term).status().IsUnavailable());
}

TEST(GrayReleaseIntegrationTest, RollbackAfterActivationServesOldVersion) {
  core::DirectLoad dl(TinyPipeline());
  ASSERT_TRUE(dl.Start().ok());
  ASSERT_TRUE(dl.RunUpdateCycle().ok());
  ASSERT_TRUE(dl.RunUpdateCycle(0.5).ok());
  ASSERT_EQ(dl.active_version(0), 2u);
  ASSERT_TRUE(dl.Rollback().ok());
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    EXPECT_EQ(dl.active_version(dc), 1u);
  }
  const webindex::Document& doc = dl.corpus().documents()[1];
  const uint32_t term = dl.corpus().TermsOf(doc)[0];
  // Queries keep being served from the rolled-back version at every DC.
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    EXPECT_TRUE(dl.Query(dc, term).ok()) << dc;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint + GC + crash interplay across the stack.
// ---------------------------------------------------------------------------

TEST(RecoveryIntegrationTest, CheckpointGcCrashSequencePreservesData) {
  SimClock clock;
  auto env = NewSsdEnv(ssd::InterfaceMode::kNativeBlock, NodeGeometry(),
                       ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.aof.segment_bytes = 256 << 10;
  options.auto_gc = false;
  Random rnd(12);
  std::map<std::string, std::string> live;
  {
    auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
    for (int i = 0; i < 150; ++i) {
      const std::string key = "url:" + std::to_string(i);
      const std::string value = rnd.NextString(2000);
      ASSERT_TRUE(db->Put(key, 1, value).ok());
      live[key] = value;
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    // Post-checkpoint deletes + GC relocations invalidate the checkpoint.
    // Deleting 7/8 of the keys pushes every sealed segment below the 25%
    // occupancy threshold so the GC physically drops the records.
    for (int i = 0; i < 150; ++i) {
      if (i % 8 == 0) continue;
      const std::string key = "url:" + std::to_string(i);
      ASSERT_TRUE(db->Del(key, 1).ok());
      live.erase(key);
    }
    ASSERT_TRUE(db->ForceGc().ok());
    EXPECT_GT(db->gc_stats().segments_reclaimed, 0u);
    EXPECT_FALSE(env->FileExists("checkpoint.dat"));
    // More writes after the GC, then a crash.
    for (int i = 200; i < 230; ++i) {
      const std::string key = "url:" + std::to_string(i);
      const std::string value = rnd.NextString(2000);
      ASSERT_TRUE(db->Put(key, 1, value).ok());
      live[key] = value;
    }
  }
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  for (const auto& [key, value] : live) {
    Result<std::string> got = db->Get(key, 1);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  // Note: without logged deletes or a post-GC checkpoint, the *deletes*
  // themselves are only as durable as the GC that physically dropped the
  // records — which ran here, so the deleted keys stay gone.
  EXPECT_TRUE(db->Get("url:1", 1).status().IsNotFound());
  EXPECT_TRUE(db->Get("url:0", 1).ok());  // A survivor, relocated by GC.
}

}  // namespace
}  // namespace directload
