// Fixture: the bulk-slice decoder class — a slice header's pair count
// reserves a vector with no check against the payload on hand — next to
// the correctly guarded version (the shape slice_codec.cc must keep).
#include <cstdint>
#include <vector>

struct Slice {
  const char* data_;
  unsigned long len;
  const char* data() const { return data_; }
  unsigned long size() const { return len; }
};

uint32_t DecodeFixed32(const char* p);

struct Status {
  static Status Protocol(const char*) { return Status(); }
  static Status OK() { return Status(); }
};

struct Pair {
  int x;
};

Status DecodePairsBad(const Slice& frame, std::vector<Pair>* pairs) {
  uint32_t pair_count = DecodeFixed32(frame.data() + 17);
  pairs->reserve(pair_count);  // BAD: forged header chooses the count.
  for (uint32_t i = 0; i < pair_count; ++i) {
    pairs->push_back(Pair{0});
  }
  return Status::OK();
}

Status DecodePairsGood(const Slice& frame, std::vector<Pair>* pairs) {
  uint32_t pair_count = DecodeFixed32(frame.data() + 17);
  if (pair_count > frame.size() / 4) {
    return Status::Protocol("pair count exceeds payload");
  }
  pairs->reserve(pair_count);  // OK: bounded against the payload on hand.
  return Status::OK();
}
