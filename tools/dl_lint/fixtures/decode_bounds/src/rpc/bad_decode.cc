// Fixture: the PR 5 remote-OOM class — wire-decoded count sizes a vector
// with no bounds check — next to the correctly guarded version.
#include <cstdint>
#include <vector>

struct Slice {
  const char* data;
  unsigned long len;
  unsigned long size() const { return len; }
};

bool GetVarint32(Slice* s, uint32_t* v);
uint32_t DecodeFixed32(const char* p);

struct Status {
  static Status Protocol(const char*) { return Status(); }
  static Status OK() { return Status(); }
};

Status DecodeBad(const Slice& payload, std::vector<int>* out) {
  Slice rest = payload;
  uint32_t count = 0;
  if (!GetVarint32(&rest, &count)) {
    return Status::Protocol("truncated count");
  }
  out->reserve(count);  // BAD: attacker-chosen count, no bounds check.
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(0);
  }
  return Status::OK();
}

Status DecodeGood(const Slice& payload, std::vector<int>* out) {
  Slice rest = payload;
  uint32_t count = 0;
  if (!GetVarint32(&rest, &count)) {
    return Status::Protocol("truncated count");
  }
  if (count > rest.size() / 4) {
    return Status::Protocol("count exceeds payload");
  }
  out->reserve(count);  // OK: bounded against the remaining payload.
  return Status::OK();
}
