// Fixture: one annotated field, one forgotten one, for guarded-by-coverage.
#ifndef FIXTURE_WIDGET_H_
#define FIXTURE_WIDGET_H_

#define GUARDED_BY(x)

struct Mutex {};

class Widget {
 public:
  void Bump();
  void Reset();
  int read_only() const;

 private:
  Mutex mu_;
  int guarded_ GUARDED_BY(mu_) = 0;
  int count_ = 0;       // BAD: mutated under mu_ in two methods, unannotated.
  int immutable_ = 42;  // Read under mu_ but never written: exempt.
};

#endif  // FIXTURE_WIDGET_H_
