// Fixture: two methods touch count_ under a held lock on mu_.
#include "widget.h"

struct MutexLock {
  explicit MutexLock(Mutex* m) { (void)m; }
};

void Widget::Bump() {
  MutexLock lock(&mu_);
  count_ += 1;
  guarded_ += 1;
  (void)immutable_;
}

void Widget::Reset() {
  MutexLock lock(&mu_);
  count_ = 0;
  guarded_ = 0;
  (void)immutable_;
}
