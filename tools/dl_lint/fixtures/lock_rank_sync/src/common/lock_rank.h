// Fixture: a LockRank enum with every lock-rank-sync violation baked in.
#ifndef FIXTURE_COMMON_LOCK_RANK_H_
#define FIXTURE_COMMON_LOCK_RANK_H_

enum class LockRank : int {
  /// Lock: `Widget::mu_` — the widget's mutable state.
  kAlpha = 2,
  /// BAD: no `Lock:` doc tag at all.
  kBeta = 4,
  /// Lock: `Widget::other_mu_` — BAD: duplicate rank value (4 == kBeta).
  kGamma = 4,
  /// Lock: `Nothing::mu_` — BAD: never constructed anywhere.
  kDelta = 6,
  /// Lock: `Widget::sib_mu_` — BAD: two construction sites but no
  /// `Sibling instances:` tag.
  kSib = 8,
};

#endif  // FIXTURE_COMMON_LOCK_RANK_H_
