// Fixture: construction sites (and one unranked mutex) for lock-rank-sync.
#include <mutex>

#include "common/lock_rank.h"

struct Mutex {
  Mutex(LockRank, const char*) {}
};

struct Widget {
  Mutex mu_{LockRank::kAlpha, "widget-mu"};
  Mutex beta_mu_{LockRank::kBeta, "widget-beta"};
  Mutex other_mu_{LockRank::kGamma, "widget-other"};
  Mutex sib_a_{LockRank::kSib, "widget-sib-a"};
  Mutex sib_b_{LockRank::kSib, "widget-sib-b"};
  std::mutex raw_mu_;  // BAD: invisible to the lock-rank checker.
};
