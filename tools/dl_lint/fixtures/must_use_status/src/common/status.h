// Fixture: minimal [[nodiscard]] Status mirroring src/common/status.h.
#ifndef FIXTURE_COMMON_STATUS_H_
#define FIXTURE_COMMON_STATUS_H_

class [[nodiscard]] Status {
 public:
  static Status OK() { return Status(); }
  bool ok() const { return true; }
};

#endif  // FIXTURE_COMMON_STATUS_H_
