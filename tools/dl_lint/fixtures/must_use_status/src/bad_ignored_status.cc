// Fixture: both ways of dropping a Status that must-use-status catches.
#include "common/status.h"

Status Flush() { return Status::OK(); }

void Caller() {
  Flush();        // BAD: ignored return — the compiler half flags this.
  (void)Flush();  // BAD: bare cast — the lexer half flags this.
}
