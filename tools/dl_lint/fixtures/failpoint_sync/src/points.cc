// Fixture: failpoint sites vs the registry doc — one undocumented, one
// duplicated; the doc lists one that does not exist.
#define DIRECTLOAD_FAILPOINT_DEFINE(var, name) int var = 0

DIRECTLOAD_FAILPOINT_DEFINE(fp_a, "site_a");
DIRECTLOAD_FAILPOINT_DEFINE(fp_b, "site_b");   // BAD: not in the doc table.
DIRECTLOAD_FAILPOINT_DEFINE(fp_a2, "site_a");  // BAD: duplicate name.
