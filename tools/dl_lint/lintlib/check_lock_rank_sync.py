"""lock-rank-sync: the lock-rank table is code, and the code is the table.

`common/lock_rank.h` is the single source of truth: every enumerator carries
a structured doc comment —

    /// Lock: `Shard::write_mutex_` — serializes the shard's mutators.
    /// Sibling instances: one per shard, named `qindb-write/sNN`.
    ///
    /// ...free prose...
    kQinDbWrite = 10,

This check cross-references three things against that enum:

* every ranked-mutex construction site (`Mutex m{LockRank::kX, "name"}`):
  a rank that is never constructed is dead; a rank constructed at two or
  more static sites, or with a runtime-computed instance name, has sibling
  instances and must say so (`Sibling instances:` tag) because equal-rank
  nesting is rejected at runtime and the reader needs to know that is
  intentional;
* every raw `std::mutex`/`std::shared_mutex`/`std::condition_variable` in
  src/ outside the ranked wrappers themselves — unranked locks are invisible
  to the deadlock checker and therefore banned;
* the rank table in docs/qindb_internals.md, which is *generated* from the
  enum between `<!-- dl-lint:lock-rank-table:begin/end -->` markers; any
  hand edit or enum change shows up as drift until `--write-docs` is rerun.
"""

import collections
import re

from .findings import Finding

NAME = "lock-rank-sync"

LOCK_RANK_H = "src/common/lock_rank.h"
DOC_FILE = "docs/qindb_internals.md"
BEGIN_MARK = "<!-- dl-lint:lock-rank-table:begin -->"
END_MARK = "<!-- dl-lint:lock-rank-table:end -->"
GENERATED_NOTE = ("<!-- Generated from src/common/lock_rank.h by "
                  "`tools/dl_lint/dl_lint.py --write-docs`. Do not edit "
                  "by hand. -->")

# Files allowed to mention raw std synchronization types: the ranked
# wrappers are built out of them.
_RAW_MUTEX_ALLOWLIST = ("src/common/thread_annotations.h",)

_RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable(?:_any)?)\b")

_ENUM_RE = re.compile(r"enum\s+class\s+LockRank\s*:\s*int\s*\{(.*?)\n\};",
                      re.S)
_ENTRY_RE = re.compile(r"^\s*k(\w+)\s*=\s*(\d+)\s*,", re.M)

_SITE_RE = re.compile(
    r"LockRank::k(\w+)\s*,\s*(\"(?:[^\"\\]|\\.)*\"|[^)}]+)")

EnumEntry = collections.namedtuple(
    "EnumEntry", "name value line lock_tag sibling_tag")
Site = collections.namedtuple("Site", "path line name_arg is_literal")


def _parse_comment_tags(comment_lines):
    """Extracts the `Lock:` and `Sibling instances:` tags from the ///
    comment block above one enumerator. A tag starts at its keyword and
    wraps until the next tag, a blank /// line, or the end of the block."""
    tags = {}
    current = None
    for text in comment_lines:
        stripped = text.strip()
        if not stripped:
            current = None
            continue
        m = re.match(r"(Lock|Sibling instances):\s*(.*)", stripped)
        if m:
            current = m.group(1)
            tags[current] = m.group(2)
        elif current is not None:
            tags[current] += " " + stripped
    return tags.get("Lock"), tags.get("Sibling instances")


def parse_enum(sf):
    """Yields EnumEntry for each LockRank enumerator in lock_rank.h."""
    m = _ENUM_RE.search(sf.raw)
    if not m:
        return None
    body, body_off = m.group(1), m.start(1)
    entries = []
    comment = []
    for raw_line in body.splitlines(keepends=True):
        stripped = raw_line.strip()
        if stripped.startswith("///"):
            comment.append(stripped[3:])
            body_off += len(raw_line)
            continue
        em = _ENTRY_RE.match(raw_line)
        if em:
            lock_tag, sibling_tag = _parse_comment_tags(comment)
            entries.append(EnumEntry(
                name="k" + em.group(1),
                value=int(em.group(2)),
                line=sf.line_of(body_off + em.start()),
                lock_tag=lock_tag,
                sibling_tag=sibling_tag))
            comment = []
        elif stripped:
            comment = []
        body_off += len(raw_line)
    return entries


def find_sites(ctx):
    """All ranked-mutex construction sites in src/ (the enum and wrapper
    headers excluded), keyed by enumerator name."""
    sites = collections.defaultdict(list)
    skip = {ctx.project.root / LOCK_RANK_H,
            ctx.project.root / "src/common/thread_annotations.h"}
    for sf in ctx.project.files_under("src"):
        if sf.path in skip:
            continue
        for m in _SITE_RE.finditer(sf.code_keep_strings):
            arg = m.group(2).strip()
            sites["k" + m.group(1)].append(Site(
                path=sf.path, line=sf.line_of(m.start()),
                name_arg=arg, is_literal=arg.startswith('"')))
    return sites


def _split_lock_tag(tag):
    """`Lock: <lock> — <protects>` -> (lock, protects)."""
    parts = tag.split("—", 1)
    lock = parts[0].strip()
    protects = parts[1].strip() if len(parts) > 1 else ""
    return lock, protects.rstrip(".")


def generate_table(entries):
    lines = [GENERATED_NOTE, "",
             "| Rank | `LockRank` enumerator | Lock | Protects |",
             "|-----:|-----------------------|------|----------|"]
    for e in sorted(entries, key=lambda e: (e.value, e.name)):
        lock, protects = _split_lock_tag(e.lock_tag or "(undocumented)")
        if e.sibling_tag:
            lock += f" (sibling instances: {e.sibling_tag.rstrip('.')})"
        lines.append(f"| {e.value} | `{e.name}` | {lock} | {protects} |")
    return "\n".join(lines)


def _doc_region(doc_sf):
    """(before, region, after, begin_line) of the marker-delimited table in
    the doc, or None when markers are missing."""
    raw = doc_sf.raw
    b = raw.find(BEGIN_MARK)
    e = raw.find(END_MARK)
    if b == -1 or e == -1 or e < b:
        return None
    start = b + len(BEGIN_MARK)
    return raw[:start], raw[start:e], raw[e:], doc_sf.line_of(b)


def _doc_findings(ctx, entries):
    doc_path = ctx.project.root / DOC_FILE
    if not doc_path.is_file():
        return [Finding(NAME, doc_path, 0,
                        f"{DOC_FILE} not found; the lock-rank table has "
                        "nowhere to live",
                        "restore the doc with the generated-table markers")]
    doc_sf = ctx.project.file(doc_path)
    region = _doc_region(doc_sf)
    if region is None:
        return [Finding(
            NAME, doc_path, 0,
            "lock-rank table markers missing "
            f"({BEGIN_MARK} / {END_MARK})",
            "wrap the generated table in the markers, then run "
            "dl_lint.py --write-docs")]
    _, current, _, begin_line = region
    if current.strip() != generate_table(entries).strip():
        return [Finding(
            NAME, doc_path, begin_line,
            "lock-rank table drifted from the enum in " + LOCK_RANK_H,
            "run tools/dl_lint/dl_lint.py --write-docs to regenerate it")]
    return []


def write_docs(ctx):
    """Regenerates the doc table in place. Returns True when the file
    changed."""
    sf = ctx.project.file(ctx.project.root / LOCK_RANK_H)
    entries = parse_enum(sf)
    doc_sf = ctx.project.file(ctx.project.root / DOC_FILE)
    region = _doc_region(doc_sf)
    if entries is None or region is None:
        return False
    before, current, after, _ = region
    regenerated = "\n" + generate_table(entries) + "\n"
    if current == regenerated:
        return False
    doc_sf.path.write_text(before + regenerated + after)
    ctx.project.invalidate(doc_sf.path)
    return True


def run(ctx):
    findings = []
    enum_path = ctx.project.root / LOCK_RANK_H
    if not enum_path.is_file():
        return [Finding(NAME, enum_path, 0, "lock_rank.h not found", "")]
    sf = ctx.project.file(enum_path)
    entries = parse_enum(sf)
    if entries is None:
        return [Finding(NAME, enum_path, 0,
                        "could not parse `enum class LockRank : int`", "")]

    by_value = collections.defaultdict(list)
    for e in entries:
        by_value[e.value].append(e)
        if not e.lock_tag:
            findings.append(Finding(
                NAME, enum_path, e.line,
                f"{e.name} has no `Lock:` doc tag",
                "document it as `/// Lock: `<lock>` — <what it protects>`; "
                "the docs table is generated from this tag"))
    for value, dupes in by_value.items():
        if len(dupes) > 1:
            names = ", ".join(d.name for d in dupes)
            findings.append(Finding(
                NAME, enum_path, dupes[1].line,
                f"rank {value} is assigned to multiple enumerators "
                f"({names})",
                "each enumerator needs a distinct rank; sibling *instances* "
                "share one enumerator, never one value across enumerators"))

    sites = find_sites(ctx)
    known = {e.name for e in entries}
    for e in entries:
        entry_sites = sites.get(e.name, [])
        if not entry_sites:
            findings.append(Finding(
                NAME, enum_path, e.line,
                f"{e.name} (rank {e.value}) is never used to construct a "
                "mutex",
                "delete the dead rank or construct the lock it documents"))
            continue
        has_siblings = (len(entry_sites) > 1
                        or any(not s.is_literal for s in entry_sites))
        if has_siblings and not e.sibling_tag:
            where = ", ".join(
                f"{s.path.name}:{s.line}" for s in entry_sites[:4])
            findings.append(Finding(
                NAME, enum_path, e.line,
                f"{e.name} has sibling instances ({where}) but no "
                "`Sibling instances:` doc tag",
                "equal-rank nesting aborts at runtime; add "
                "`/// Sibling instances: <why several locks share this "
                "rank>` so the sharing is visibly intentional"))
    for name in sorted(set(sites) - known):
        s = sites[name][0]
        findings.append(Finding(
            NAME, s.path, s.line,
            f"construction references LockRank::{name}, which is not in "
            "the enum", "add the rank to common/lock_rank.h"))

    for sf2 in ctx.project.files_under("src"):
        rel = sf2.path.relative_to(ctx.project.root).as_posix()
        if rel in _RAW_MUTEX_ALLOWLIST:
            continue
        for m in _RAW_MUTEX_RE.finditer(sf2.code):
            line = sf2.line_of(m.start())
            if sf2.suppressed(line, NAME):
                continue
            findings.append(Finding(
                NAME, sf2.path, line,
                f"raw std::{m.group(1)} is invisible to the lock-rank "
                "checker",
                "use the ranked Mutex/SharedMutex/CondVar wrappers from "
                "common/thread_annotations.h"))

    findings += _doc_findings(ctx, entries)
    return findings
