"""failpoint-registry-sync: docs/fault_injection.md lists every failpoint.

Chaos coverage (tests/chaos_test.cc, PR 4) is only as good as the registry
table operators read when deciding what to inject. This check keeps the
table honest in both directions: every `DIRECTLOAD_FAILPOINT_DEFINE(var,
"name")` site must appear in the doc's registry table, every documented
name must still exist in the code, and a name may be defined only once
(registration aborts on duplicates at static-init time — catching it here
is friendlier).
"""

import collections
import re

from .findings import Finding

NAME = "failpoint-registry-sync"

DOC_FILE = "docs/fault_injection.md"

_DEFINE_RE = re.compile(
    r"DIRECTLOAD_FAILPOINT_DEFINE\s*\(\s*\w+\s*,\s*\"([^\"]+)\"\s*\)")

# The registry table is the one whose header row is `| failpoint | site |`;
# other tables in the doc (the actions table) also use backticks and must
# not be mistaken for registry rows.
_TABLE_HEADER_RE = re.compile(r"^\|\s*failpoint\s*\|\s*site\s*\|\s*$", re.M)
# First cell of a row; it may document several names
# (`qindb_put` / `qindb_get` / `qindb_del`).
_DOC_ROW_RE = re.compile(r"^\|([^|]*)\|", re.M)
_DOC_NAME_RE = re.compile(r"`([a-z0-9_]+)`")


def _code_sites(ctx):
    sites = collections.defaultdict(list)
    for sf in ctx.project.files_under("src"):
        if sf.path.name == "failpoint.h":
            continue  # The macro's own definition, not a site.
        for m in _DEFINE_RE.finditer(sf.code_keep_strings):
            sites[m.group(1)].append((sf.path, sf.line_of(m.start())))
    return sites


def _doc_names(doc_sf):
    """name -> doc lines, from the registry table (after its header row,
    until the first non-table line)."""
    names = collections.defaultdict(list)
    header = _TABLE_HEADER_RE.search(doc_sf.raw)
    if header is None:
        return names
    # `$` in the header regex matches before the newline; skip past it.
    tail = doc_sf.raw[header.end():]
    skipped = len(tail) - len(tail.lstrip("\n"))
    offset = header.end() + skipped
    for raw_line in tail.lstrip("\n").splitlines(keepends=True):
        if not raw_line.lstrip().startswith("|"):
            break  # End of the registry table.
        row = _DOC_ROW_RE.match(raw_line.lstrip())
        if row:
            line = doc_sf.line_of(offset)
            for m in _DOC_NAME_RE.finditer(row.group(1)):
                names[m.group(1)].append(line)
        offset += len(raw_line)
    return names


def run(ctx):
    findings = []
    doc_path = ctx.project.root / DOC_FILE
    if not doc_path.is_file():
        return [Finding(NAME, doc_path, 0,
                        f"{DOC_FILE} not found; failpoint registry has no "
                        "documentation to sync against",
                        "restore the doc's registry table")]
    sites = _code_sites(ctx)
    doc = _doc_names(ctx.project.file(doc_path))

    for name, where in sorted(sites.items()):
        if len(where) > 1:
            path, line = where[1]
            findings.append(Finding(
                NAME, path, line,
                f'failpoint "{name}" is defined more than once '
                f"(first at {where[0][0].name}:{where[0][1]})",
                "registration aborts on duplicate names at static init; "
                "pick a unique site name"))
        if name not in doc:
            path, line = where[0]
            findings.append(Finding(
                NAME, path, line,
                f'failpoint "{name}" is not documented in {DOC_FILE}',
                "add a `| `" + name + "` | <site description> |` row to "
                "the registry table"))
    for name, lines in sorted(doc.items()):
        if name not in sites:
            findings.append(Finding(
                NAME, doc_path, lines[0],
                f'documented failpoint "{name}" has no '
                "DIRECTLOAD_FAILPOINT_DEFINE site in src/",
                "delete the stale row, or restore the failpoint it "
                "documents"))
    return findings
