"""must-use-status: no Status/Result<T> return may be silently dropped.

Three layers:

1. Compiler-enforced: `Status` and `Result<T>` are `[[nodiscard]]`, so this
   check re-drives every TU in compile_commands.json through the project
   compiler with `-fsyntax-only -Wunused-result` and turns each
   [-Wunused-result] diagnostic into a finding. The compiler sees through
   macros, templates and overloads — no lexer heuristic can.
2. Lexer-enforced: bare `(void)` casts of a call whose callee name is
   declared somewhere in the tree to return Status/Result are findings even
   though they silence the compiler: the sanctioned discard idioms are
   `DL_CHECK_OK` / `DL_LOG_IF_ERROR` / `DL_DISCARD_STATUS`, which force the
   author to record *why* the drop is safe.
3. Self-guarding: the `[[nodiscard]]` attributes on the Status/Result class
   definitions themselves must stay, or layer 1 silently dies.
"""

import multiprocessing
import pathlib
import re
import subprocess

from .findings import Finding

NAME = "must-use-status"

_DIAG_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):\d+:\s+warning:.*\[-Wunused-result\]",
    re.M,
)

# A declaration (or definition) returning Status or Result<...>; captures the
# unqualified function name. The trailing `(` keeps `Status s = ...;` out.
_DECL_RE = re.compile(
    r"\b(?:Status|Result<[^<>;{}]{1,80}>)\s+"
    r"(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)

# Any other `<type> <name>(` shape. Names that appear with both a
# Status/Result return and some other return type (e.g. Random::Next vs
# FrameDecoder::Next) are ambiguous to a class-blind catalog and are left
# to the compiler half.
_OTHER_DECL_RE = re.compile(
    r"\b([A-Za-z_][\w:]*(?:<[^<>;{}]{0,80}>)?(?:\s*[*&])?)\s+"
    r"(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)

_NOT_TYPES = {"return", "new", "delete", "else", "case", "throw", "goto",
              "do", "if", "while", "for", "switch", "const", "constexpr",
              "inline", "static", "virtual", "explicit", "friend",
              "co_return", "co_await", "co_yield", "Status"}

# `(void)` cast; the cast expression is inspected separately.
_VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*")

_NOT_CALLEES = {"if", "for", "while", "switch", "sizeof", "return"}


def _syntax_only_argv(argv):
    """Strip output/link args from a compile command and add the warning."""
    out = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if arg in ("-c", "-MD", "-MMD"):
            continue
        out.append(arg)
    out += ["-fsyntax-only", "-Wunused-result"]
    return out


def _compile_one(job):
    path, argv, directory = job
    proc = subprocess.run(
        _syntax_only_argv(argv),
        cwd=directory,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return str(path), proc.returncode, proc.stderr


def _compiler_findings(ctx):
    entries = ctx.project.compile_commands()
    if not entries:
        if ctx.require_compile_db:
            return [
                Finding(NAME, ctx.project.root, 0,
                        "no compile_commands.json found",
                        "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "
                        "and pass the build dir via -p")
            ]
        return []
    jobs = [(path, argv, ctx.project.build_dir) for path, argv in entries]
    with multiprocessing.Pool() as pool:
        results = pool.map(_compile_one, jobs)
    findings = []
    seen = set()
    for tu, returncode, stderr in results:
        for m in _DIAG_RE.finditer(stderr):
            path = pathlib.Path(m.group("path"))
            if not path.is_absolute():
                path = (ctx.project.build_dir / path).resolve()
            key = (str(path), int(m.group("line")))
            if key in seen:
                continue  # A header diag repeats once per including TU.
            seen.add(key)
            findings.append(Finding(
                NAME, path, int(m.group("line")),
                "return value of a [[nodiscard]] Status/Result call is "
                "ignored",
                "handle the error, or use DL_CHECK_OK / DL_LOG_IF_ERROR / "
                "DL_DISCARD_STATUS to say why dropping it is safe"))
        if returncode != 0 and not _DIAG_RE.search(stderr):
            findings.append(Finding(
                NAME, pathlib.Path(tu), 0,
                "TU failed -fsyntax-only recompilation (see compiler "
                "output above); cannot verify unused-result",
                "fix the build first"))
    return findings


def _callee_catalog(files):
    """Unqualified names declared anywhere to return Status/Result, minus
    names that are ambiguous (also declared with another return type)."""
    names = set()
    ambiguous = set()
    for sf in files:
        for m in _DECL_RE.finditer(sf.code):
            names.add(m.group(1))
        for m in _OTHER_DECL_RE.finditer(sf.code):
            rtype = m.group(1).split("<")[0].strip(" *&")
            if rtype not in _NOT_TYPES and not rtype.startswith("Result"):
                ambiguous.add(m.group(2))
    return names - ambiguous - _NOT_CALLEES


def _void_cast_findings(ctx, files):
    catalog = _callee_catalog(files)
    findings = []
    for sf in files:
        code = sf.code
        for m in _VOID_CAST_RE.finditer(code):
            # Extract the callee: the identifier immediately before the first
            # `(` of the cast operand, stopping at statement end.
            i = m.end()
            expr = []
            while i < len(code) and code[i] not in "(;,{}":
                expr.append(code[i])
                i += 1
            if i >= len(code) or code[i] != "(":
                continue  # Not a call — `(void)x;`, unused-param idiom.
            callee = re.search(r"([A-Za-z_]\w*)\s*$", "".join(expr))
            if not callee or callee.group(1) not in catalog:
                continue
            line = sf.line_of(m.start())
            if sf.suppressed(line, NAME):
                continue
            findings.append(Finding(
                NAME, sf.path, line,
                f"bare (void) cast discards the Status/Result returned by "
                f"{callee.group(1)}()",
                "a bare cast records nothing; use DL_CHECK_OK, "
                "DL_LOG_IF_ERROR or DL_DISCARD_STATUS with a reason"))
    return findings


def _nodiscard_findings(ctx):
    findings = []
    for rel, cls in (("src/common/status.h", "Status"),
                     ("src/common/result.h", "Result")):
        path = ctx.project.root / rel
        if not path.is_file():
            continue
        sf = ctx.project.file(path)
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, sf.code):
            findings.append(Finding(
                NAME, path, 1,
                f"class {cls} has lost its [[nodiscard]] attribute",
                "restore `class [[nodiscard]] " + cls + "`; the compiler "
                "half of this check depends on it"))
    return findings


def run(ctx):
    files = ctx.project.files_under("src", "tests", "bench")
    findings = []
    findings += _nodiscard_findings(ctx)
    findings += _void_cast_findings(ctx, files)
    if not ctx.no_compile:
        findings += _compiler_findings(ctx)
    return findings
