"""decode-bounds: wire-decoded integers are hostile until compared.

PR 5's review found a remote OOM: `reserve(count)` where `count` came
straight off the wire. This check generalizes that class for all of
src/rpc/: any integer produced by the decode primitives
(`DecodeFixed32/64`, `GetVarint32/64`) is *tainted*; using a tainted value
as a `resize`/`reserve` argument or a loop bound before an `if` has
compared it against something (the remaining payload, a configured
maximum) is a finding.

The sanitizer rule is deliberately lenient — any comparison of the tainted
variable in an `if` condition counts, because the interesting bug
is the *absence of any check at all*, and a wrong check is a code-review
problem, not a greppable one. Taint is tracked per function (brace depth
returns to zero) and killed by the first sanitizing comparison.
"""

import re

from .findings import Finding

NAME = "decode-bounds"

_TAINT_SOURCES = [
    # GetVarint32(&rest, &count) — out-param form.
    re.compile(r"\bGetVarint(?:32|64)\s*\([^;]*?&\s*(\w+)\s*\)"),
    # count = DecodeFixed32(...) — return-value form.
    re.compile(r"\b(\w+)\s*=\s*DecodeFixed(?:32|64)\s*\("),
]

_SINK_RE = re.compile(r"(?:\.|->)\s*(resize|reserve)\s*\(([^;]*)\)")
_LOOP_RE = re.compile(r"\b(for|while)\s*\(([^{;]*(?:;[^{;]*;[^{)]*)?)\)")
_CMP_OPS = ("<", ">", "<=", ">=")


def _condition_compares(cond, var):
    """True when `cond` contains `var` adjacent to a relational operator —
    the shape of a bounds check (`count > rest.size() / 12`)."""
    if not re.search(r"\b" + re.escape(var) + r"\b", cond):
        return False
    return any(op in cond for op in _CMP_OPS)


def _scan_function(sf, body, body_off, findings):
    """Linear taint scan over one function body (stripped code)."""
    tainted = {}  # var -> source line
    events = []

    for src_re in _TAINT_SOURCES:
        for m in src_re.finditer(body):
            events.append((m.start(), "taint", m.group(1), None))
    for m in re.finditer(r"\bif\s*\(", body):
        # Condition runs to the matching close paren.
        depth, j = 1, m.end()
        while j < len(body) and depth:
            depth += {"(": 1, ")": -1}.get(body[j], 0)
            j += 1
        events.append((m.start(), "if", body[m.end():j - 1], None))
    for m in _SINK_RE.finditer(body):
        events.append((m.start(), "sink", m.group(1), m.group(2)))
    for m in _LOOP_RE.finditer(body):
        events.append((m.start(), "loop", m.group(1), m.group(2)))

    for off, kind, a, b in sorted(events):
        line = sf.line_of(body_off + off)
        if kind == "taint":
            tainted[a] = line
        elif kind == "if":
            for var in [v for v in tainted if _condition_compares(a, v)]:
                del tainted[var]
        elif kind in ("sink", "loop"):
            expr = b if b is not None else ""
            for var in list(tainted):
                if not re.search(r"\b" + re.escape(var) + r"\b", expr):
                    continue
                # Note `for (i = 0; i < count; ++i)` is a sink, not a
                # sanitizer: its comparison bounds `i`, not `count`.
                if sf.suppressed(line, NAME):
                    continue
                what = (f"{a}({expr.strip()})" if kind == "sink"
                        else f"{a} loop bounded by `{var}`")
                findings.append(Finding(
                    NAME, sf.path, line,
                    f"{what} uses wire-decoded `{var}` (line "
                    f"{tainted[var]}) with no preceding bounds check",
                    f"compare `{var}` against the remaining payload (or a "
                    "configured maximum) before allocating or iterating — "
                    "a forged frame chooses this value"))
                del tainted[var]


_FUNC_OPEN_RE = re.compile(
    r"\)\s*(?:const\s*|noexcept\s*|override\s*|final\s*)*$")


def _function_bodies(code):
    """(start, end) offsets of outermost function bodies: brace blocks whose
    opening `{` follows a `)` (plus trailing qualifiers). Namespace, class
    and enum blocks don't match and are descended into; nested blocks inside
    a matched function are part of it."""
    i = 0
    while True:
        i = code.find("{", i)
        if i == -1:
            return
        if _FUNC_OPEN_RE.search(code[:i].rstrip()[-40:] or " "):
            depth, j = 1, i + 1
            while j < len(code) and depth:
                depth += {"{": 1, "}": -1}.get(code[j], 0)
                j += 1
            yield i + 1, j - 1
            i = j
        else:
            i += 1


# Every tree that decodes wire bytes: the RPC frame codec, the bulk-load
# slice codec, and the server-side ingest decoder.
_SCANNED_DIRS = ("src/rpc", "src/bifrost/wire", "src/server")


def run(ctx):
    findings = []
    for root in _SCANNED_DIRS:
        for sf in ctx.project.files_under(root):
            code = sf.code
            for start, end in _function_bodies(code):
                _scan_function(sf, code[start:end], start, findings)
    return findings
