"""Finding: one `file:line` diagnostic with a fix hint."""

import dataclasses
import pathlib


@dataclasses.dataclass(frozen=True)
class Finding:
    check: str          # check name, e.g. "must-use-status"
    path: pathlib.Path  # file the finding is anchored to
    line: int           # 1-based; 0 when the finding is file-level
    message: str        # what is wrong
    hint: str = ""      # how to fix it

    def render(self, root: pathlib.Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        out = f"{rel}:{self.line}: [{self.check}] {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out


def sort_key(f: Finding):
    return (str(f.path), f.line, f.check, f.message)
