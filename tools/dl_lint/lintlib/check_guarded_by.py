"""guarded-by-coverage: fields that live under a lock must say so.

The thread-safety annotations (common/thread_annotations.h) only help when
they are present: clang's -Wthread-safety verifies `GUARDED_BY` fields, but
a field someone forgot to annotate is verified against nothing. This check
finds the forgotten ones structurally: a member field that is touched inside
the scope of a held `MutexLock`/`WriterLock`/`ReaderLock` on the same mutex
in two or more distinct methods is, by the repo's own conventions, part of
that mutex's protected state and must carry `GUARDED_BY(<mutex>)`.

One lock-holding method could be a coincidence (e.g. publishing a value
once under a lifecycle lock); two is a pattern. Fields no code path ever
*writes* are exempt — with no writer there is nothing to race with, and
flagging immutable config/geometry reads would drown the signal. Deliberate
exceptions take a `// dl-lint: ignore(guarded-by-coverage)` comment on the
declaration.

Heuristic, by design: it matches the repo's idioms (guards named
`Lock guard(&member_mu_)`, members suffixed `_`) rather than parsing C++.
Atomics, constants, mutexes and condvars are excluded — they are their own
synchronization.
"""

import collections
import re

from .findings import Finding

NAME = "guarded-by-coverage"

_GUARD_RE = re.compile(
    r"\b(?:MutexLock|WriterLock|ReaderLock)\s+\w+\s*\(\s*&(\w+)\s*\)")

# One-line member declaration: optional qualifiers, a type, an identifier
# with the trailing-underscore member convention, optional annotation and
# initializer. Multi-line declarations are simply not seen (under-report,
# never false-positive). The leading keyword guard keeps statements like
# `return mem_;` from parsing as a declaration of `mem_` with type `return`.
_DECL_RE = re.compile(
    r"^\s*(?!return\b|delete\b|throw\b|case\b|goto\b|new\b|using\b|"
    r"typedef\b|else\b|break\b|continue\b)"
    r"(?:mutable\s+|static\s+)*"
    r"(?P<type>[A-Za-z_][\w:<>,\s*&]*?)\s+"
    r"(?P<name>[a-z]\w*_)\s*"
    r"(?P<annot>GUARDED_BY\([^)]*\)|PT_GUARDED_BY\([^)]*\))?\s*"
    r"(?:=\s*[^;]*|\{[^;]*\})?;",
    re.M)

# Evidence that a field is ever written: assignment/compound-assignment,
# increment/decrement, a mutating container/smart-pointer method, taking a
# non-const reference via `&field`, or being moved from. A field no code
# path mutates has no writer to race with and needs no GUARDED_BY.
_MUTATION_METHODS = (r"reset|release|clear|erase|insert|emplace\w*|"
                     r"push_back|push_front|pop_back|pop_front|assign|"
                     r"resize|reserve|swap|store|fetch_\w+")


def _mutation_re(name):
    n = re.escape(name)
    return re.compile(
        rf"\b{n}\s*(?:=[^=]|[-+|&^]=|\+\+|--)"
        rf"|(?:\+\+|--)\s*{n}\b"
        rf"|\b{n}\s*\.\s*(?:{_MUTATION_METHODS})\s*\("
        rf"|(?<![&\w])&\s*{n}\b"
        rf"|std::move\s*\(\s*{n}\s*\)")

_EXCLUDED_TYPE_RE = re.compile(
    r"\batomic\b|\bMutex\b|\bSharedMutex\b|\bCondVar\b|\bmutex\b|"
    r"\bcondition_variable\b|\bconst\b")

_EXCLUDED_NAME_RE = re.compile(r"(mu|mutex|cv)_$")


def _brace_pairs(code):
    """Matched (open_offset, close_offset) brace pairs."""
    pairs, stack = [], []
    for i, c in enumerate(code):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def _innermost_block(pairs, offset):
    best = None
    for open_off, close_off in pairs:
        if open_off < offset < close_off:
            if best is None or open_off > best[0]:
                best = (open_off, close_off)
    return best


def _declared_fields(sf):
    """name -> list of (line, annotated, path) for member-convention
    declarations whose type is not self-synchronizing. A name may be
    declared by several classes in one file; the check is class-blind, so
    all declarations are kept and a name counts as annotated/suppressed
    when any of its declarations is."""
    fields = collections.defaultdict(list)
    for m in _DECL_RE.finditer(sf.code):
        name = m.group("name")
        if _EXCLUDED_NAME_RE.search(name):
            continue
        if _EXCLUDED_TYPE_RE.search(m.group("type")):
            continue
        line = sf.line_of(m.start("name"))
        # GUARDED_BY on a continuation line (`    connections_ GUARDED_BY`)
        # still counts; check the raw declaration line too.
        annotated = (m.group("annot") is not None
                     or "GUARDED_BY" in sf.raw_line(line))
        fields[name].append((line, annotated, sf.path))
    return fields


def run(ctx):
    findings = []
    sources = ctx.project.files_under("src")
    headers_by_stem = {}
    for sf in sources:
        if sf.path.suffix == ".h":
            headers_by_stem[(sf.path.parent, sf.path.stem)] = sf

    for sf in sources:
        fields = _declared_fields(sf)
        header = headers_by_stem.get((sf.path.parent, sf.path.stem))
        if header is not None and header is not sf:
            for name, decls in _declared_fields(header).items():
                fields[name].extend(decls)
        if not fields:
            continue

        # Mutation evidence must come from executable code: blank out the
        # declarations themselves so a default member initializer
        # (`int immutable_ = 42;`) does not read as an assignment.
        def _without_decls(code):
            return _DECL_RE.sub(lambda m: " " * len(m.group(0)), code)

        mutation_text = _without_decls(sf.code)
        if header is not None and header is not sf:
            mutation_text += _without_decls(header.code)

        pairs = _brace_pairs(sf.code)
        # (field, mutex) -> set of guard scopes touching the field.
        touches = collections.defaultdict(set)
        for g in _GUARD_RE.finditer(sf.code):
            mutex = g.group(1)
            block = _innermost_block(pairs, g.start())
            if block is None:
                continue
            scope = sf.code[g.end():block[1]]
            for name in fields:
                if re.search(r"\b" + re.escape(name) + r"\b", scope):
                    touches[(name, mutex)].add(block[0])

        reported = set()
        for (name, mutex), scopes in sorted(touches.items()):
            if len(scopes) < 2 or name in reported:
                continue
            decls = fields[name]
            if any(annotated for _, annotated, _ in decls):
                continue
            if any(ctx.project.file(p).suppressed(line, NAME)
                   for line, _, p in decls):
                continue
            if not _mutation_re(name).search(mutation_text):
                # Never written anywhere we can see: there is no writer to
                # race with, so demanding a lock annotation is noise
                # (immutable config, injected pointers, geometry).
                continue
            # Report once per field even if it pairs with several mutexes.
            reported.add(name)
            line, _, decl_path = decls[0]
            findings.append(Finding(
                NAME, decl_path, line,
                f"field {name} is touched under a held lock on {mutex} in "
                f"{len(scopes)} methods but has no GUARDED_BY annotation",
                f"declare it `... {name} GUARDED_BY({mutex});` so clang "
                "-Wthread-safety can verify every access, or add "
                "`// dl-lint: ignore(guarded-by-coverage)` with a reason"))
    return findings
