"""dl-lint: DirectLoad's repo-specific static analysis checks.

Each check module exposes `run(ctx) -> list[Finding]`. The CLI in
../dl_lint.py wires them together; selftest.py runs each check against a
known-bad fixture tree and the clean repo.
"""

from . import findings  # noqa: F401
from . import project  # noqa: F401
