"""Source discovery and a position-preserving C++ lexer.

dl-lint's structural checks run on `code()` — the file text with comments
and string/char literal *contents* blanked to spaces (delimiters and
newlines kept), so every regex match reports the true line number and
nothing inside a comment or a log message can fake a match. Checks that
need literal strings (failpoint names, mutex names) use `code_keep_strings()`;
checks that need comments (the lock-rank doc tags) read `raw`.
"""

import bisect
import functools
import json
import pathlib
import re
import shlex

_SOURCE_SUFFIXES = (".h", ".cc")


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Returns text of identical length/line structure with comment bodies
    (and, unless keep_strings, string/char literal bodies) replaced by
    spaces. Quote and comment delimiters themselves are preserved so the
    output still lexes sanely."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            if not keep_strings:
                for k in range(i + 1, min(j, n)):
                    if out[k] != "\n":
                        out[k] = " "
            i = min(j, n - 1) + 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path: pathlib.Path):
        self.path = path
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self._line_starts = [0] + [
            m.end() for m in re.finditer("\n", self.raw)
        ]

    @functools.cached_property
    def code(self) -> str:
        """Comments and string contents blanked."""
        return strip_comments_and_strings(self.raw)

    @functools.cached_property
    def code_keep_strings(self) -> str:
        """Comments blanked, string contents kept."""
        return strip_comments_and_strings(self.raw, keep_strings=True)

    def line_of(self, offset: int) -> int:
        """1-based line number containing byte `offset`."""
        return bisect.bisect_right(self._line_starts, offset)

    def raw_line(self, line: int) -> str:
        """The raw text of 1-based `line` (no trailing newline)."""
        start = self._line_starts[line - 1]
        end = self.raw.find("\n", start)
        return self.raw[start:] if end == -1 else self.raw[start:end]

    def suppressed(self, line: int, check: str) -> bool:
        """True when the raw line carries a `dl-lint: ignore(<check>)`
        suppression comment."""
        return f"dl-lint: ignore({check})" in self.raw_line(line)


class Project:
    """A source root plus (optionally) its compile database."""

    def __init__(self, root: pathlib.Path, build_dir: pathlib.Path = None):
        self.root = root.resolve()
        self.build_dir = build_dir.resolve() if build_dir else None
        self._files = {}

    def file(self, path: pathlib.Path) -> SourceFile:
        path = path.resolve()
        if path not in self._files:
            self._files[path] = SourceFile(path)
        return self._files[path]

    def invalidate(self, path: pathlib.Path):
        """Drop the cached SourceFile after rewriting `path` on disk."""
        self._files.pop(path.resolve(), None)

    def files_under(self, *subdirs: str):
        """All .h/.cc files under the named root-relative subdirs, sorted."""
        out = []
        for sub in subdirs:
            base = self.root / sub
            if not base.is_dir():
                continue
            for p in sorted(base.rglob("*")):
                if p.suffix in _SOURCE_SUFFIXES and p.is_file():
                    out.append(self.file(p))
        return out

    def compile_commands(self):
        """Parsed compile_commands.json entries whose file lies under the
        project root, as (path, argv) pairs. Empty when there is no build
        dir or no database (checks that need it report that themselves)."""
        if self.build_dir is None:
            return []
        db = self.build_dir / "compile_commands.json"
        if not db.is_file():
            return []
        entries = []
        for entry in json.loads(db.read_text()):
            path = pathlib.Path(entry["file"])
            if not path.is_absolute():
                path = pathlib.Path(entry["directory"]) / path
            path = path.resolve()
            if self.root not in path.parents:
                continue
            if "arguments" in entry:
                argv = list(entry["arguments"])
            else:
                argv = shlex.split(entry["command"])
            entries.append((path, argv))
        return entries
