#!/usr/bin/env python3
"""dl-lint self-test (ctest: dl_lint_selftest).

Two halves:
  1. Each check flags its known-bad fixture tree (and does NOT flag the
     deliberately-clean lines sitting next to the bad ones).
  2. The full suite runs clean on the real tree — the same invocation CI
     gates on.

Usage: selftest.py [--build-dir BUILD] [--no-compile]
"""

import argparse
import json
import pathlib
import shutil
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]
FIXTURES = HERE / "fixtures"
DL_LINT = HERE / "dl_lint.py"

_failures = []


def run_lint(args):
    proc = subprocess.run(
        [sys.executable, str(DL_LINT)] + args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def expect(cond, what, output=""):
    tag = "ok" if cond else "FAIL"
    print(f"[{tag}] {what}")
    if not cond:
        _failures.append(what)
        if output:
            print(output)


def check_fixture(name, check, extra_args, must_flag, must_not_flag=()):
    """Runs one check over its fixture; asserts exit 1, that every
    `must_flag` (file-suffix, substring) pair appears, and that no
    `must_not_flag` substring does."""
    root = FIXTURES / name
    code, out = run_lint(["--root", str(root), "--checks", check]
                         + extra_args)
    expect(code == 1, f"{name}: exits 1 on findings (got {code})", out)
    for suffix, needle in must_flag:
        hit = any(suffix in line and needle in line
                  for line in out.splitlines())
        expect(hit, f"{name}: flags {needle!r} in {suffix}", out)
    for needle in must_not_flag:
        expect(needle not in out,
               f"{name}: does not flag the clean {needle!r}", out)


def test_must_use_status():
    root = FIXTURES / "must_use_status"
    src = root / "src" / "bad_ignored_status.cc"
    cxx = shutil.which("c++") or shutil.which("g++")
    if cxx is None:
        expect(False, "must_use_status: no C++ compiler on PATH")
        return
    with tempfile.TemporaryDirectory() as build:
        (pathlib.Path(build) / "compile_commands.json").write_text(
            json.dumps([{
                "directory": build,
                "file": str(src),
                "arguments": [cxx, "-std=c++17", f"-I{root / 'src'}",
                              "-Wall", "-c", str(src), "-o", "bad.o"],
            }]))
        check_fixture(
            "must_use_status", "must-use-status", ["-p", build],
            must_flag=[
                ("bad_ignored_status.cc:7", "is ignored"),
                ("bad_ignored_status.cc:8", "bare (void) cast"),
            ])


def test_lock_rank_sync():
    check_fixture(
        "lock_rank_sync", "lock-rank-sync", [],
        must_flag=[
            ("lock_rank.h:9", "no `Lock:` doc tag"),
            ("lock_rank.h:11", "assigned to multiple enumerators"),
            ("lock_rank.h:13", "never used to construct"),
            ("lock_rank.h:16", "no `Sibling instances:` doc tag"),
            ("widget.cc:16", "raw std::mutex"),
            ("qindb_internals.md:3", "drifted"),
        ],
        must_not_flag=["kAlpha has"])


def test_guarded_by():
    check_fixture(
        "guarded_by", "guarded-by-coverage", [],
        must_flag=[("widget.h:18", "count_ is touched under a held lock")],
        must_not_flag=["guarded_", "immutable_"])


def test_decode_bounds():
    check_fixture(
        "decode_bounds", "decode-bounds", [],
        must_flag=[
            ("bad_decode.cc:26", "no preceding bounds check"),
            ("bad_slice_decode.cc:27", "no preceding bounds check"),
        ],
        must_not_flag=["bad_decode.cc:42", "bad_slice_decode.cc:39"])


def test_failpoint_sync():
    check_fixture(
        "failpoint_sync", "failpoint-registry-sync", [],
        must_flag=[
            ("points.cc:6", "not documented"),
            ("points.cc:7", "defined more than once"),
            ("fault_injection.md:8", "has no DIRECTLOAD_FAILPOINT_DEFINE"),
        ],
        must_not_flag=['"site_a" is not documented'])


def test_clean_tree(build_dir, no_compile):
    args = ["--root", str(REPO)]
    if build_dir:
        args += ["-p", str(build_dir)]
    if no_compile:
        args += ["--no-compile"]
    code, out = run_lint(args)
    expect(code == 0, f"clean tree: full suite passes (exit {code})", out)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default=None,
                    help="build dir with compile_commands.json for the "
                         "clean-tree run")
    ap.add_argument("--no-compile", action="store_true",
                    help="skip the compiler half on the clean-tree run")
    args = ap.parse_args()

    test_must_use_status()
    test_lock_rank_sync()
    test_guarded_by()
    test_decode_bounds()
    test_failpoint_sync()
    test_clean_tree(args.build_dir, args.no_compile)

    if _failures:
        print(f"\ndl-lint selftest: {len(_failures)} failure(s)")
        return 1
    print("\ndl-lint selftest: all passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
