#!/usr/bin/env python3
"""dl-lint: DirectLoad's repo-specific static analysis suite.

Machine-checks the conventions that generic tooling cannot see:

    must-use-status         every Status/Result return is inspected
    lock-rank-sync          lock_rank.h, its construction sites and the
                            docs table agree
    guarded-by-coverage     lock-protected fields carry GUARDED_BY
    decode-bounds           wire-decoded integers are bounds-checked
                            before they size anything (src/rpc/)
    failpoint-registry-sync code failpoints == docs/fault_injection.md

Usage:
    tools/dl_lint/dl_lint.py [-p BUILD_DIR] [--root DIR]
                             [--checks a,b,...] [--no-compile]
                             [--write-docs] [--list-checks]

Dependency-free by necessity and by design: it runs on the Python stdlib
plus the project's own compiler (via compile_commands.json) — see
docs/static_analysis.md for why there is no libclang here and what that
costs. Exit status: 0 clean, 1 findings, 2 infrastructure error.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from lintlib import findings as findings_mod  # noqa: E402
from lintlib import project  # noqa: E402
from lintlib import (  # noqa: E402
    check_decode_bounds,
    check_failpoint_sync,
    check_guarded_by,
    check_lock_rank_sync,
    check_must_use_status,
)

CHECKS = {
    check_must_use_status.NAME: check_must_use_status,
    check_lock_rank_sync.NAME: check_lock_rank_sync,
    check_guarded_by.NAME: check_guarded_by,
    check_decode_bounds.NAME: check_decode_bounds,
    check_failpoint_sync.NAME: check_failpoint_sync,
}


class Context:
    """What a check gets to see: the project plus run options."""

    def __init__(self, proj, no_compile=False, require_compile_db=True):
        self.project = proj
        self.no_compile = no_compile
        self.require_compile_db = require_compile_db


def main(argv=None):
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    ap = argparse.ArgumentParser(prog="dl-lint", description=__doc__)
    ap.add_argument("-p", "--build-dir", type=pathlib.Path, default=None,
                    help="build dir containing compile_commands.json "
                         "(default: <root>/build)")
    ap.add_argument("--root", type=pathlib.Path, default=repo_root,
                    help="source root to lint (default: the repo)")
    ap.add_argument("--checks", default=None,
                    help="comma-separated subset of checks to run")
    ap.add_argument("--no-compile", action="store_true",
                    help="skip the compiler half of must-use-status")
    ap.add_argument("--write-docs", action="store_true",
                    help="regenerate the lock-rank table in "
                         "docs/qindb_internals.md, then lint")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name, mod in CHECKS.items():
            first = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24} {first}")
        return 0

    selected = list(CHECKS)
    if args.checks:
        selected = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = [c for c in selected if c not in CHECKS]
        if unknown:
            print(f"dl-lint: unknown check(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    root = args.root.resolve()
    build_dir = args.build_dir or (root / "build")
    proj = project.Project(root, build_dir)
    ctx = Context(proj, no_compile=args.no_compile)

    if args.write_docs:
        if check_lock_rank_sync.write_docs(ctx):
            print(f"dl-lint: regenerated lock-rank table in "
                  f"{check_lock_rank_sync.DOC_FILE}")

    all_findings = []
    try:
        for name in selected:
            all_findings += CHECKS[name].run(ctx)
    except OSError as e:
        print(f"dl-lint: {e}", file=sys.stderr)
        return 2

    all_findings.sort(key=findings_mod.sort_key)
    for f in all_findings:
        print(f.render(root))
    n = len(all_findings)
    print(f"dl-lint: {n} finding{'s' if n != 1 else ''} "
          f"({', '.join(selected)})")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
